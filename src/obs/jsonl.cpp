#include "obs/jsonl.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace icb::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string jsonArray(std::span<const std::uint64_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

std::string jsonArray(std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += jsonNumber(values[i]);
  }
  out += ']';
  return out;
}

void JsonObject::keyPrefix(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += jsonEscape(key);
  out_ += "\":";
}

JsonObject& JsonObject::put(std::string_view key, std::string_view value) {
  keyPrefix(key);
  out_ += '"';
  out_ += jsonEscape(value);
  out_ += '"';
  return *this;
}

JsonObject& JsonObject::put(std::string_view key, bool value) {
  keyPrefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::put(std::string_view key, double value) {
  keyPrefix(key);
  out_ += jsonNumber(value);
  return *this;
}

JsonObject& JsonObject::put(std::string_view key, std::uint64_t value) {
  keyPrefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::put(std::string_view key, std::int64_t value) {
  keyPrefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::putRaw(std::string_view key, std::string_view rawJson) {
  keyPrefix(key);
  out_ += rawJson;
  return *this;
}

// ---------------------------------------------------------------------------
// reader

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(pos_, what);
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  /// RAII depth guard: every container level (object or array) entered
  /// bumps the count, so `[[[[...` fails with a structured error long
  /// before the recursive descent can exhaust the stack.
  struct DepthGuard {
    Parser& parser;
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxJsonDepth) {
        parser.fail("nesting deeper than " + std::to_string(kMaxJsonDepth) +
                    " levels");
      }
    }
    ~DepthGuard() { --parser.depth_; }
  };

  JsonValue parseValue() {
    skipSpace();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parseString();
      return v;
    }
    if (consumeLiteral("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consumeLiteral("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consumeLiteral("null")) return JsonValue{};
    return parseNumber();
  }

  JsonValue parseObject() {
    const DepthGuard depth(*this);
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      v.members.emplace_back(std::move(key), parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    const DepthGuard depth(*this);
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters must be escaped.  Rejecting the raw
        // bytes keeps a truncated or binary-garbage request line from being
        // silently folded into a string value.
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character in string");
        }
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = readHex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = readHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          appendUtf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  /// Reads exactly four hex digits of a \u escape.
  unsigned readHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return code;
  }

  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // strtod accepts spellings RFC 8259 forbids ("+1", "01", "1.", ".5",
    // "0x10"), so validate the JSON number grammar first:
    //   -? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?
    const char* p = token.c_str();
    if (*p == '-') ++p;
    if (*p == '0') {
      ++p;
    } else if (*p >= '1' && *p <= '9') {
      while (*p >= '0' && *p <= '9') ++p;
    } else {
      fail("malformed number '" + token + "'");
    }
    if (*p == '.') {
      ++p;
      if (*p < '0' || *p > '9') fail("malformed number '" + token + "'");
      while (*p >= '0' && *p <= '9') ++p;
    }
    if (*p == 'e' || *p == 'E') {
      ++p;
      if (*p == '+' || *p == '-') ++p;
      if (*p < '0' || *p > '9') fail("malformed number '" + token + "'");
      while (*p >= '0' && *p <= '9') ++p;
    }
    if (*p != '\0') fail("malformed number '" + token + "'");
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) {
  return Parser(text).parseDocument();
}

std::vector<JsonValue> parseJsonLines(std::istream& in) {
  std::vector<JsonValue> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(parseJson(line));
  }
  return out;
}

}  // namespace icb::obs
