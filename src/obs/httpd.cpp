#include "obs/httpd.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace icb::obs {

namespace {

constexpr int kBacklog = 16;
constexpr std::size_t kMaxRequestBytes = 8192;

[[noreturn]] void throwErrno(const char* what) {
  throw std::runtime_error(std::string("httpd: ") + what + ": " +
                           std::strerror(errno));
}

const char* reasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Writes the whole buffer; MSG_NOSIGNAL so a scraper hanging up mid-reply
/// surfaces as EPIPE, not a process-killing SIGPIPE.  A signal landing
/// mid-write (EINTR) is retried -- nothing was consumed -- while a real
/// error (EPIPE, ECONNRESET, ...) abandons the rest: the peer is gone and
/// there is nobody left to read it.
void sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // defensive: never spin on a zero-byte send
    off += static_cast<std::size_t>(n);
  }
}

void sendResponse(int fd, const HttpResponse& resp) {
  std::ostringstream os;
  os << "HTTP/1.1 " << resp.status << ' ' << reasonPhrase(resp.status)
     << "\r\nContent-Type: " << resp.contentType
     << "\r\nContent-Length: " << resp.body.size()
     << "\r\nConnection: close\r\n\r\n"
     << resp.body;
  sendAll(fd, os.str());
}

/// Reads until the end of the request headers (blank line) or limits hit.
/// Bodies are ignored -- every endpoint is a GET.
std::string readRequestHead(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < kMaxRequestBytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // EOF, timeout, or error: parse what we have
    head.append(buf, static_cast<std::size_t>(n));
  }
  return head;
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, HttpHandler handler)
    : handler_(std::move(handler)) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  const auto fail = [fd](const char* what) {
    const int err = errno;
    close(fd);
    errno = err;
    throwErrno(what);
  };
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail("bind");
  }
  if (listen(fd, kBacklog) != 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listenFd_.store(fd);
  thread_ = std::thread([this] { serveLoop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  const int fd = listenFd_.exchange(-1);
  // shutdown() wakes the blocked accept() with an error so the loop exits;
  // the close itself waits for the join so the thread can never touch a
  // recycled descriptor.
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (fd >= 0) close(fd);
}

void HttpServer::serveLoop() {
  while (true) {
    const int lfd = listenFd_.load();
    if (lfd < 0) return;
    const int fd = accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (or unrecoverable): exit loop
    }
    // A stalled client must not wedge the single-threaded loop forever.
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    const std::string head = readRequestHead(fd);
    const std::size_t lineEnd = head.find("\r\n");
    std::istringstream requestLine(
        head.substr(0, lineEnd == std::string::npos ? head.size() : lineEnd));
    std::string method;
    std::string target;
    requestLine >> method >> target;

    HttpResponse resp;
    if (method.empty() || target.empty() || target[0] != '/') {
      resp.status = 400;
      resp.body = "bad request\n";
    } else if (method != "GET") {
      resp.status = 405;
      resp.body = "only GET is supported\n";
    } else {
      // Route on the path only; any query string is ignored.
      const std::string path = target.substr(0, target.find('?'));
      try {
        resp = handler_(path);
      } catch (const std::exception& e) {
        resp = HttpResponse{};
        resp.status = 500;
        resp.body = std::string("handler error: ") + e.what() + "\n";
      }
    }
    sendResponse(fd, resp);
    close(fd);
  }
}

}  // namespace icb::obs
