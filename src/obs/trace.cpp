#include "obs/trace.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "bdd/manager.hpp"

namespace icb::obs {

// ---------------------------------------------------------------------------
// sink

TraceSink::TraceSink(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), os_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("TraceSink: cannot open '" + path + "'");
  }
}

void TraceSink::writeLine(std::string_view line) {
  const Stopwatch watch;
  const MutexLock lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  os_->put('\n');
  ++lines_;
  writeSeconds_ += watch.elapsedSeconds();
}

void TraceSink::flush() {
  const Stopwatch watch;
  const MutexLock lock(mutex_);
  os_->flush();
  writeSeconds_ += watch.elapsedSeconds();
}

double TraceSink::writeSeconds() const {
  const MutexLock lock(mutex_);
  return writeSeconds_;
}

std::uint64_t TraceSink::linesWritten() const {
  const MutexLock lock(mutex_);
  return lines_;
}

// ---------------------------------------------------------------------------
// process-wide default sink, installed from ICBDD_TRACE at startup

namespace {

const Stopwatch g_traceEpoch;

/// Owns the sink built from the environment, when there is one.
std::unique_ptr<TraceSink>& envSinkHolder() {
  static std::unique_ptr<TraceSink> holder;
  return holder;
}

TraceSink* sinkFromEnv() {
  const char* env = std::getenv("ICBDD_TRACE");
  if (env == nullptr) return nullptr;
  const std::string value(env);
  if (value.empty() || value == "off" || value == "0" || value == "none") {
    return nullptr;
  }
  try {
    if (value == "stderr") {
      envSinkHolder() = std::make_unique<TraceSink>(std::cerr);
    } else if (value == "stdout") {
      envSinkHolder() = std::make_unique<TraceSink>(std::cout);
    } else {
      envSinkHolder() = std::make_unique<TraceSink>(value);
    }
  } catch (const std::exception& e) {
    std::cerr << "ICBDD_TRACE: " << e.what() << " -- tracing disabled\n";
    return nullptr;
  }
  return envSinkHolder().get();
}

}  // namespace

namespace trace_detail {
std::atomic<TraceSink*> g_sink{sinkFromEnv()};
}  // namespace trace_detail

void setDefaultTraceSink(TraceSink* sink) {
  // Release publishes the sink object's construction to any thread whose
  // acquire load in defaultTraceSink() observes the new pointer.
  trace_detail::g_sink.store(sink, std::memory_order_release);
}

double traceClockSeconds() { return g_traceEpoch.elapsedSeconds(); }

// ---------------------------------------------------------------------------
// deadline crediting

namespace {

void creditDeadline(BddManager* mgr, double seconds) {
  if (mgr == nullptr || seconds <= 0.0) return;
  ResourceLimits limits = mgr->limits();
  if (!limits.deadline.isSet()) return;
  limits.deadline.extendBySeconds(seconds);
  mgr->setLimits(limits);
}

}  // namespace

void emitGlobalEvent(std::string_view event, BddManager& mgr,
                     JsonObject fields) {
  TraceSink* sink = defaultTraceSink();
  if (sink == nullptr) return;
  const Stopwatch watch;
  std::string line = std::move(JsonObject()
                                   .put("ev", event)
                                   .put("t", traceClockSeconds()))
                         .str();
  // Splice the caller's fields into the envelope: "{...}" + "{...}".
  std::string body = std::move(fields).str();
  line.back() = ',';           // replace the closing '}' of the envelope
  line += body.substr(1);      // drop the opening '{' of the body
  sink->writeLine(line);
  creditDeadline(&mgr, watch.elapsedSeconds());
}

// ---------------------------------------------------------------------------
// session

void TraceSession::writeCrediting(const Stopwatch& sinceEmitEntry,
                                  std::string&& line) {
  sink_->writeLine(line);
  creditDeadline(mgr_, sinceEmitEntry.elapsedSeconds());
}

JsonObject TraceSession::envelope(std::string_view event, double t) const {
  JsonObject obj;
  obj.put("ev", event).put("t", t);
  if (worker_ >= 0) obj.put("worker", worker_);
  if (!job_.empty()) obj.put("job", job_);
  return obj;
}

void TraceSession::runBegin(std::string_view method, std::string_view detail) {
  if (!enabled()) return;
  const Stopwatch watch;
  JsonObject obj = envelope("run_begin", traceClockSeconds());
  obj.put("method", method);
  if (!detail.empty()) obj.put("detail", detail);
  writeCrediting(watch, std::move(obj).str());
}

void TraceSession::runEnd(std::string_view verdict, unsigned iterations,
                          double seconds, std::uint64_t peakIterateNodes,
                          std::uint64_t peakAllocatedNodes) {
  if (!enabled()) return;
  const Stopwatch watch;
  writeCrediting(watch, std::move(envelope("run_end", traceClockSeconds())
                                      .put("verdict", verdict)
                                      .put("iterations", iterations)
                                      .put("seconds", seconds)
                                      .put("peak_iterate_nodes", peakIterateNodes)
                                      .put("peak_allocated_nodes",
                                           peakAllocatedNodes))
                            .str());
  sink_->flush();
}

void TraceSession::phaseBegin(std::string_view phase, std::uint64_t iteration) {
  if (!enabled()) return;
  const Stopwatch watch;
  open_.push_back(OpenSpan{std::string(phase), iteration, traceClockSeconds()});
  writeCrediting(watch, std::move(envelope("phase_begin", open_.back().startSeconds)
                                      .put("phase", phase)
                                      .put("iter", iteration))
                            .str());
}

void TraceSession::phaseEnd(std::string_view phase, std::uint64_t iteration,
                            std::uint64_t allocatedNodes,
                            std::uint64_t peakNodes,
                            std::span<const std::uint64_t> conjunctSizes) {
  if (!enabled()) return;
  const Stopwatch watch;
  double wall = 0.0;
  if (!open_.empty() && open_.back().phase == phase &&
      open_.back().iteration == iteration) {
    wall = traceClockSeconds() - open_.back().startSeconds;
    open_.pop_back();
  }
  std::uint64_t total = 0;
  for (const std::uint64_t s : conjunctSizes) total += s;
  writeCrediting(watch,
                 std::move(envelope("phase_end", traceClockSeconds())
                               .put("phase", phase)
                               .put("iter", iteration)
                               .put("wall_s", wall)
                               .put("allocated_nodes", allocatedNodes)
                               .put("peak_nodes", peakNodes)
                               .put("iterate_nodes", total)
                               .putRaw("conjunct_sizes", jsonArray(conjunctSizes)))
                     .str());
}

void TraceSession::emit(std::string_view event, JsonObject fields) {
  if (!enabled()) return;
  const Stopwatch watch;
  std::string line = envelope(event, traceClockSeconds()).str();
  std::string body = std::move(fields).str();
  line.back() = ',';
  line += body.substr(1);
  writeCrediting(watch, std::move(line));
}

}  // namespace icb::obs
