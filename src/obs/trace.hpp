// JSONL run tracing for the verification engines and the BDD core.
//
// A TraceSession emits one JSON object per line (docs/observability.md has
// the schema): run_begin / run_end bracketing an engine run, phase_begin /
// phase_end spans for each backward- or forward-image iteration (carrying
// wall time, live-node counts, and the per-conjunct size vector), and
// loose events for the ICI policy passes, termination tests, GC, and
// reordering.
//
// Enablement mirrors the ICBDD_CHECK_LEVEL design from src/check/:
//
//   * the ICBDD_TRACE environment variable installs a process-wide sink at
//     startup ("off" / "0" / "" disable; "stderr" / "stdout" stream there;
//     anything else is a file path, truncated on open);
//   * EngineOptions::traceSink overrides the process sink for one run;
//   * every emit path starts with an inline null-check, so a disabled
//     session costs one pointer compare per call site and never allocates
//     (verified by the zero-allocation test and a microbench).
//
// Emission time is credited back to the manager's resource deadline the
// same way ICBDD_CHECK audits credit theirs, so tracing a resource-capped
// bench can never flip its verdict to a spurious timeout.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/jsonl.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace icb {
class BddManager;
}  // namespace icb

namespace icb::obs {

/// Destination for JSONL trace lines.  Accounts the wall time spent writing
/// so callers can exclude sink flushes from resource-capped phases.
///
/// Thread-safe at line granularity: an internal mutex serializes writeLine /
/// flush, so concurrent scheduler cells (src/par/) can share one trace file
/// and every JSONL line stays intact.  Sessions themselves are still
/// per-cell objects -- only the sink is shared.
class TraceSink {
 public:
  /// Writes to a borrowed stream (kept alive by the caller).
  explicit TraceSink(std::ostream& os) : os_(&os) {}

  /// Opens (and truncates) `path`; throws std::runtime_error on failure.
  explicit TraceSink(const std::string& path);

  void writeLine(std::string_view line) ICBDD_EXCLUDES(mutex_);
  void flush() ICBDD_EXCLUDES(mutex_);

  [[nodiscard]] double writeSeconds() const ICBDD_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t linesWritten() const ICBDD_EXCLUDES(mutex_);

 private:
  std::ofstream owned_;
  // os_ itself is set once at construction; the *stream* it points at is
  // what the mutex serializes (pt_guarded_by), along with both counters.
  std::ostream* os_ ICBDD_PT_GUARDED_BY(mutex_) = nullptr;
  mutable Mutex mutex_;  ///< guards the stream and both counters
  double writeSeconds_ ICBDD_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t lines_ ICBDD_GUARDED_BY(mutex_) = 0;
};

namespace trace_detail {
extern std::atomic<TraceSink*> g_sink;  // installed from ICBDD_TRACE
}  // namespace trace_detail

/// The process-wide default sink (nullptr when tracing is off).
/// Acquire pairs with the release store in setDefaultTraceSink so a thread
/// that observes a freshly installed sink also observes the sink object's
/// initialization (free on x86; the emit paths behind it dwarf it anyway).
[[nodiscard]] inline TraceSink* defaultTraceSink() {
  return trace_detail::g_sink.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool traceEnabled() {
  return defaultTraceSink() != nullptr;
}

/// Replaces the process-wide sink (nullptr disables).  The caller keeps
/// ownership of the sink and must outlive any traced work.
void setDefaultTraceSink(TraceSink* sink);

/// Seconds since the process-wide trace epoch; every event's "t" field uses
/// this clock so events from different sessions interleave consistently.
[[nodiscard]] double traceClockSeconds();

/// Emits a one-shot event on the process-wide sink, crediting the emission
/// time back to `mgr`'s deadline.  Used by BddManager phases (GC, reorder)
/// that have no session.  Callers must guard with traceEnabled() so the
/// disabled path never builds the JsonObject.
void emitGlobalEvent(std::string_view event, BddManager& mgr, JsonObject fields);

/// One engine run's (or bench cell's) trace stream.
///
/// The sink is resolved at construction: an explicit sink wins, else the
/// process-wide ICBDD_TRACE sink, else the session is disabled.  When a
/// manager is attached, the time spent building and writing every event is
/// credited back to its deadline (the BenchCaps "tracing must not flip a
/// verdict" guarantee).
class TraceSession {
 public:
  /// `worker` >= 0 stamps every event of this session with a "worker" field
  /// (the scheduler's per-cell attribution); -1 omits it.  A non-empty
  /// `jobId` likewise stamps a "job" field -- the service's request-id
  /// correlation, so one job's spans can be joined across the interleaved
  /// stream of a whole batch.
  explicit TraceSession(TraceSink* sink = nullptr, BddManager* creditMgr = nullptr,
                        int worker = -1, std::string jobId = {})
      : sink_(sink != nullptr ? sink : defaultTraceSink()),
        mgr_(creditMgr),
        worker_(worker),
        job_(std::move(jobId)) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] TraceSink* sink() const { return sink_; }
  [[nodiscard]] int worker() const { return worker_; }
  [[nodiscard]] const std::string& job() const { return job_; }

  /// Opens the run span.  `method` is the engine name, `detail` optional
  /// free-form context (model name, variable count).
  void runBegin(std::string_view method, std::string_view detail = {});

  /// Closes the run span.  `verdict` is verdictName(result.verdict).
  void runEnd(std::string_view verdict, unsigned iterations, double seconds,
              std::uint64_t peakIterateNodes, std::uint64_t peakAllocatedNodes);

  /// Opens an iteration span.  Nested spans close innermost-first.
  void phaseBegin(std::string_view phase, std::uint64_t iteration);

  /// Closes the innermost span opened with `phase`/`iteration`, recording
  /// its wall time, the manager-independent iterate sizes, and node counts.
  void phaseEnd(std::string_view phase, std::uint64_t iteration,
                std::uint64_t allocatedNodes, std::uint64_t peakNodes,
                std::span<const std::uint64_t> conjunctSizes);

  /// Emits one arbitrary event.  Build the JsonObject only after checking
  /// enabled() -- the builder allocates.
  void emit(std::string_view event, JsonObject fields);

 private:
  struct OpenSpan {
    std::string phase;
    std::uint64_t iteration;
    double startSeconds;
  };

  void writeCrediting(const Stopwatch& sinceEmitEntry, std::string&& line);

  /// Starts an event envelope:
  /// {"ev":..., "t":..., ["worker":...], ["job":...]}.
  [[nodiscard]] JsonObject envelope(std::string_view event, double t) const;

  TraceSink* sink_;
  BddManager* mgr_;
  int worker_ = -1;
  std::string job_;
  std::vector<OpenSpan> open_;
};

}  // namespace icb::obs
