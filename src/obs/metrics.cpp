#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "bdd/manager.hpp"
#include "xmem/stats.hpp"
#include "ici/evaluate_policy.hpp"
#include "ici/simplify.hpp"
#include "ici/termination.hpp"
#include "obs/jsonl.hpp"

namespace icb::obs {

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (delta == 0) return;
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::setGauge(std::string_view name, double value) {
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::setGaugeMax(std::string_view name, double value) {
  double& slot = gauges_[std::string(name)];
  slot = std::max(slot, value);
}

void MetricsRegistry::recordHistogram(std::string_view name,
                                      std::uint64_t value) {
  histograms_[std::string(name)].record(value);
}

void MetricsRegistry::mergeHistogram(std::string_view name,
                                     const Histogram& h) {
  if (h.empty()) return;
  histograms_[std::string(name)].merge(h);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it != gauges_.end() ? it->second : 0.0;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(std::string(name));
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void MetricsRegistry::captureBdd(const BddManager& mgr) {
  const BddStats& s = mgr.stats();
  add("bdd.nodes_created", s.nodesCreated);
  setGaugeMax("bdd.peak_nodes", static_cast<double>(s.peakNodes));
  add("bdd.gc.runs", s.gcRuns);
  add("bdd.gc.reclaimed", s.gcReclaimed);
  add("bdd.unique.lookups", s.uniqueLookups);
  add("bdd.unique.chain_steps", s.uniqueChainSteps);
  add("bdd.reorder.swaps", s.reorderSwaps);
  add("bdd.reorder.runs", s.reorderRuns);
  add("bdd.reorder.saved_nodes", s.reorderSavedNodes);
  add("bdd.reorder.interrupted", s.reorderInterrupted);
  add("bdd.restrict.calls", s.restrictCalls);
  add("bdd.constrain.calls", s.constrainCalls);
  add("bdd.multi_restrict.calls", s.multiRestrictCalls);

  for (std::size_t op = 1; op < kBddOpCount; ++op) {
    const BddOpCacheStats& c = s.opCache[op];
    if (c.lookups == 0) continue;
    const std::string base =
        std::string("bdd.cache.") + bddOpName(static_cast<BddOp>(op));
    add(base + ".lookups", c.lookups);
    add(base + ".hits", c.hits);
  }
  add("bdd.cache.lookups", s.cacheLookups());
  add("bdd.cache.hits", s.cacheHits());
  add("bdd.cache.resizes", s.cacheResizes);
  add("bdd.ref.underflow", s.refUnderflows);
  add("bdd.par.steals", s.parSteals);
  add("bdd.par.cas_retries", s.parCasRetries);
  add("bdd.par.cache_races", s.parCacheRaces);
  if (s.cacheLookups() > 0) {
    setGauge("bdd.cache.hit_rate", static_cast<double>(s.cacheHits()) /
                                       static_cast<double>(s.cacheLookups()));
  }

  for (std::size_t op = 1; op < kBddOpCount; ++op) {
    const Histogram& h = s.applyLatencyUs[op];
    if (h.empty()) continue;
    mergeHistogram(std::string("bdd.apply.") + bddOpName(static_cast<BddOp>(op)) +
                       ".latency_us",
                   h);
  }
  mergeHistogram("bdd.gc.pause_us", s.gcPauseUs);
  mergeHistogram("bdd.reorder.pause_us", s.reorderPauseUs);

  // External-memory tier: present only when the manager was armed for spill
  // (pagerStats() is null otherwise), so unspilled runs emit byte-identical
  // metric output to builds that predate the tier.
  if (const xmem::PagerStats* pager = mgr.pagerStats()) {
    add("bdd.xmem.page_faults", pager->pageFaults);
    add("bdd.xmem.evictions", pager->evictions);
    add("bdd.xmem.spill_bytes", pager->spillBytes);
    add("bdd.xmem.read_bytes", pager->readBytes);
    add("bdd.xmem.write_bytes", pager->writeBytes);
    mergeHistogram("bdd.xmem.page_read_us", pager->pageReadUs);
    mergeHistogram("bdd.xmem.page_write_us", pager->pageWriteUs);
  }
}

void MetricsRegistry::captureTermination(const TerminationStats& stats) {
  add("ici.term.calls", stats.tautologyCalls);
  add("ici.term.implications", stats.implicationChecks);
  add("ici.term.step1_constant", stats.step1Hits);
  add("ici.term.step2_complement", stats.step2Hits);
  add("ici.term.step3_restrict", stats.step3Hits);
  add("ici.term.step4_shannon", stats.shannonExpansions);
  setGaugeMax("ici.term.max_depth", static_cast<double>(stats.maxDepth));
}

void MetricsRegistry::capturePolicy(const EvaluatePolicyResult& result) {
  add("ici.policy.merges_accepted", result.merges);
  add("ici.policy.merges_rejected", result.rejections);
  add("ici.policy.simplify_applications", result.simplifyApplications);
  add("ici.pair_table.entries_built", result.pairEntriesBuilt);
  add("ici.pair_table.entries_reused", result.pairEntriesReused);
  add("ici.pair_table.aborted_builds", result.abortedPairBuilds);
  if (!result.acceptedRatios.empty()) {
    const auto [minIt, maxIt] = std::minmax_element(
        result.acceptedRatios.begin(), result.acceptedRatios.end());
    setGauge("ici.policy.best_accepted_ratio", *minIt);
    setGaugeMax("ici.policy.worst_accepted_ratio", *maxIt);
  }
  if (result.rejectedRatio > 0.0) {
    setGauge("ici.policy.last_rejected_ratio", result.rejectedRatio);
  }
}

void MetricsRegistry::captureSimplify(const SimplifyResult& result) {
  add("ici.simplify.passes", result.passes);
  add("ici.simplify.applications", result.applications);
  add("ici.simplify.nodes_saved", result.nodesSaved());
}

std::string MetricsRegistry::toJson() const {
  JsonObject countersObj;
  for (const auto& [name, value] : counters_) countersObj.put(name, value);
  JsonObject gaugesObj;
  for (const auto& [name, value] : gauges_) gaugesObj.put(name, value);
  JsonObject out;
  out.putRaw("counters", std::move(countersObj).str());
  out.putRaw("gauges", std::move(gaugesObj).str());
  if (!histograms_.empty()) {
    JsonObject histObj;
    for (const auto& [name, h] : histograms_) {
      histObj.putRaw(name, h.summaryJson());
    }
    out.putRaw("histograms", std::move(histObj).str());
  }
  return std::move(out).str();
}

void MetricsRegistry::print(std::ostream& os, std::string_view indent) const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters_) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, value] : counters_) {
    os << indent << name << std::string(width - name.size(), ' ') << " = "
       << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << indent << name << std::string(width - name.size(), ' ') << " = "
       << jsonNumber(value) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << indent << name << " = " << h.summaryJson() << '\n';
  }
}

}  // namespace icb::obs
