// Log2-bucketed histogram: the distribution-valued metric type.
//
// Counters and gauges (obs/metrics.hpp) summarize *totals*; a Histogram
// records the *shape* of a distribution -- job queue waits, per-op apply
// latencies, GC pauses, checkpoint sizes -- cheaply enough to live inside
// hot-path stat structs (BddStats keeps one per operator class):
//
//   * recording is branch-light integer work: std::bit_width picks the
//     bucket, so record() is an increment into a fixed 64-slot array plus
//     count/sum/min/max maintenance -- no allocation, no locking, no
//     floating point.  Like every native stat struct, a Histogram is
//     single-writer by confinement; share one only through SharedMetrics;
//   * buckets are powers of two: bucket 0 holds the value 0 and bucket b
//     holds values v with bit_width(v) == b, i.e. [2^(b-1), 2^b - 1].  The
//     inclusive upper bounds 0, 1, 3, 7, 15, ... are exactly the `le`
//     boundaries of the Prometheus rendering (obs/prometheus.hpp);
//   * merging is bucket-wise addition, so it is associative and commutative
//     -- per-worker histograms fold into a batch histogram in any order and
//     the result is identical (tested in tests/obs_histogram_test.cpp);
//   * quantile() estimates percentiles by walking the cumulative counts and
//     interpolating linearly inside the selected bucket.  With power-of-two
//     buckets the estimate is exact for bucket boundaries and never off by
//     more than the bucket width (a factor of two) for anything else --
//     plenty for p50/p90/p99 dashboards and backpressure heuristics.
//
// Units are the caller's: the metric catalog (docs/observability.md) bakes
// the unit into the name (`_us` for microseconds, `_bytes`, ...).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace icb::obs {

class Histogram {
 public:
  /// Bucket count: value 0, one bucket per bit width 1..62, one overflow.
  static constexpr std::size_t kBuckets = 64;

  /// Bucket index recording value `v`: 0 for v == 0, else bit_width(v)
  /// capped at the overflow bucket.
  [[nodiscard]] static constexpr std::size_t bucketFor(std::uint64_t v) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(v));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `b` (2^b - 1); the last bucket is
  /// unbounded and reports uint64 max (rendered as +Inf by Prometheus).
  [[nodiscard]] static constexpr std::uint64_t bucketUpperBound(
      std::size_t b) {
    if (b + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  /// Inclusive lower bound of bucket `b` (0, then 2^(b-1)).
  [[nodiscard]] static constexpr std::uint64_t bucketLowerBound(
      std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t value) {
    ++buckets_[bucketFor(value)];
    ++count_;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Bucket-wise addition: associative and commutative, so per-worker
  /// histograms merge into an aggregate in any grouping.
  void merge(const Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ != 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Smallest / largest value recorded (0 when empty).
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] std::uint64_t bucketCount(std::size_t b) const {
    return buckets_[b];
  }

  /// Estimated value at quantile `q` in [0, 1]: linear interpolation inside
  /// the bucket holding the q-th ranked sample, clamped to the observed
  /// min/max so a constant distribution reports that constant exactly.
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Shorthand: {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,
  /// "p99":..} -- the summary object embedded in MetricsRegistry::toJson.
  [[nodiscard]] std::string summaryJson() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

}  // namespace icb::obs
