#include "obs/histogram.hpp"

#include <cmath>
#include <sstream>

namespace icb::obs {

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based: q == 0 selects the first sample,
  // q == 1 the last, matching the "nearest rank with interpolation" rule.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t inBucket = buckets_[b];
    if (inBucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += inBucket;
    if (rank > static_cast<double>(cumulative)) continue;
    // The ranked sample falls in bucket b; interpolate linearly between
    // the bucket's bounds, clamped to the observed min/max so the overflow
    // bucket and single-valued distributions stay honest.
    double lo = static_cast<double>(bucketLowerBound(b));
    double hi = b + 1 >= kBuckets ? static_cast<double>(max_)
                                  : static_cast<double>(bucketUpperBound(b));
    if (lo < static_cast<double>(min_)) lo = static_cast<double>(min_);
    if (hi > static_cast<double>(max_)) hi = static_cast<double>(max_);
    if (hi < lo) hi = lo;
    const double fraction =
        inBucket == 1 ? 0.0
                      : (rank - before - 1.0) / static_cast<double>(inBucket - 1);
    return lo + (hi - lo) * fraction;
  }
  return static_cast<double>(max_);
}

std::string Histogram::summaryJson() const {
  auto round2 = [](double v) {
    std::ostringstream os;
    os << std::llround(v);
    return os.str();
  };
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"sum\":" << sum_ << ",\"min\":" << min()
     << ",\"max\":" << max() << ",\"p50\":" << round2(quantile(0.50))
     << ",\"p90\":" << round2(quantile(0.90))
     << ",\"p99\":" << round2(quantile(0.99)) << "}";
  return os.str();
}

}  // namespace icb::obs
