// Minimal JSON support for the observability layer: an incremental object
// builder for emitting JSONL trace events and machine-readable bench output,
// and a small recursive-descent reader for the trace tooling and the schema
// round-trip tests.  Deliberately tiny -- this is not a general JSON library,
// just enough for the schemas documented in docs/observability.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace icb::obs {

/// Thrown by parseJson / parseJsonLines on malformed input.  Derives from
/// std::runtime_error (the historical contract) but additionally carries the
/// byte offset of the failure, so services parsing untrusted request lines
/// can report a structured error instead of a bare string.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& what)
      : std::runtime_error("JSON parse error at offset " +
                           std::to_string(offset) + ": " + what),
        offset_(offset),
        detail_(what) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }

 private:
  std::size_t offset_;
  std::string detail_;
};

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// Renders a double the way the trace schema expects: plain decimal, enough
/// precision to round-trip the timings we record, never NaN/Inf (clamped to
/// 0 -- JSON has no spelling for them).
[[nodiscard]] std::string jsonNumber(double value);

[[nodiscard]] std::string jsonArray(std::span<const std::uint64_t> values);
[[nodiscard]] std::string jsonArray(std::span<const double> values);

/// Builds one {"key":value,...} object incrementally.  Keys are emitted in
/// call order; callers are responsible for uniqueness.
class JsonObject {
 public:
  JsonObject() : out_("{") {}

  JsonObject& put(std::string_view key, std::string_view value);
  JsonObject& put(std::string_view key, const char* value) {
    return put(key, std::string_view(value));
  }
  JsonObject& put(std::string_view key, const std::string& value) {
    return put(key, std::string_view(value));
  }
  JsonObject& put(std::string_view key, bool value);
  JsonObject& put(std::string_view key, double value);
  JsonObject& put(std::string_view key, std::uint64_t value);
  JsonObject& put(std::string_view key, std::int64_t value);
  JsonObject& put(std::string_view key, unsigned value) {
    return put(key, static_cast<std::uint64_t>(value));
  }
  JsonObject& put(std::string_view key, int value) {
    return put(key, static_cast<std::int64_t>(value));
  }
  /// Splices pre-rendered JSON (a nested object or array) as the value.
  JsonObject& putRaw(std::string_view key, std::string_view rawJson);

  /// Closes the object and returns it.  The builder must not be reused.
  [[nodiscard]] std::string str() && {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void keyPrefix(std::string_view key);

  std::string out_;
  bool first_ = true;
};

// ---------------------------------------------------------------------------
// reader

/// One parsed JSON value.  Numbers are kept as doubles (every counter the
/// schemas emit fits a double's 53-bit mantissa comfortably).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] double numberOr(double def) const {
    return kind == Kind::kNumber ? number : def;
  }
  [[nodiscard]] std::string_view textOr(std::string_view def) const {
    return kind == Kind::kString ? std::string_view(text) : def;
  }
};

/// Nesting-depth cap for parseJson.  Untrusted request lines (src/svc/) are
/// parsed with the same reader as our own trace output, so pathological
/// inputs like ten thousand '[' must fail with a structured error instead of
/// exhausting the stack.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// Parses one JSON document.  Throws JsonParseError (a std::runtime_error)
/// on malformed, truncated, or over-deep input, and on trailing garbage.
/// Raw control characters inside strings are rejected (RFC 8259 requires
/// them escaped); unescaped non-ASCII bytes pass through as UTF-8.
[[nodiscard]] JsonValue parseJson(std::string_view text);

/// Parses a JSONL stream: one JSON value per non-empty line.  Throws
/// JsonParseError on the first malformed line.
[[nodiscard]] std::vector<JsonValue> parseJsonLines(std::istream& in);

}  // namespace icb::obs
