// Pipelined processor vs. non-pipelined specification (paper Figure 3,
// Table 3).
//
//             non-deterministic instruction stream
//                  |                        |
//   IMPLEMENTATION |          SPECIFICATION |
//   (branch stall) |                        | (stalls with the pipeline)
//   Instruction Fetch              Instruction Delay D1
//        |                                  |
//   Execute  <-- register bypass   Instruction Delay D2
//        |            from WB               |
//   Register Writeback             Fetch-Execute-Writeback (one cycle)
//        |                                  |
//   Register File  ===== always equal? ===== Register File
//
// Instructions: 3-bit opcode (NOP BR LD ST ADD SUB MOV SR), source register,
// destination register, immediate field (B bits).  BR performs no operation
// but stalls the pipeline: while a BR sits in Execute or Writeback, fetched
// instructions are forced to NOP (and the spec sees the same forced NOPs,
// keeping the two streams identical).  The spec buffers instructions two
// cycles so its architectural state is phase-aligned with the pipeline.
//
// Property (one conjunct per register): the two register files agree.
//
// Bug injection: the register bypass path is omitted, so back-to-back
// dependent instructions read stale operands.
#pragma once

#include <memory>
#include <vector>

#include "sym/bitvector.hpp"
#include "sym/fsm.hpp"

namespace icb {

struct PipelineCpuConfig {
  unsigned registers = 2;  ///< power of two, >= 2
  unsigned width = 1;      ///< datapath bits ("B" in Table 3)
  bool injectBug = false;
};

class PipelineCpuModel {
 public:
  PipelineCpuModel(BddManager& mgr, const PipelineCpuConfig& config);

  [[nodiscard]] Fsm& fsm() { return *fsm_; }
  [[nodiscard]] const PipelineCpuConfig& config() const { return config_; }

  [[nodiscard]] std::vector<unsigned> fdCandidates() const { return {}; }

  enum Opcode : unsigned {
    kNop = 0,
    kBr = 1,
    kLd = 2,
    kSt = 3,
    kAdd = 4,
    kSub = 5,
    kMov = 6,
    kSr = 7,
  };

 private:
  PipelineCpuConfig config_;
  std::unique_ptr<Fsm> fsm_;
};

}  // namespace icb
