#include "models/mutex_ring.hpp"

#include <array>
#include <string>

namespace icb {

namespace {

unsigned bitsFor(unsigned maxValue) {
  unsigned bits = 1;
  while ((1u << bits) <= maxValue) ++bits;
  return bits;
}

}  // namespace

MutexRingModel::MutexRingModel(BddManager& mgr, const MutexRingConfig& config)
    : config_(config), fsm_(std::make_unique<Fsm>(mgr)) {
  const unsigned n = config.cells;
  if (n < 2) throw BddUsageError("MutexRingModel: need at least 2 cells");
  VarManager& vars = fsm_->vars();
  const unsigned selWidth = bitsFor(n - 1);

  // ---- inputs: selected cell + nondeterministic nudge ----------------------
  BitVec sel;
  for (unsigned j = 0; j < selWidth; ++j) {
    sel.push(vars.input(vars.addInputBit("sel" + std::to_string(j))));
  }
  const Bdd nudge = vars.input(vars.addInputBit("nudge"));

  // ---- state: per cell, 2 phase bits + token bit -----------------------------
  std::vector<std::array<unsigned, 2>> phase(n);
  std::vector<unsigned> token(n);
  for (unsigned i = 0; i < n; ++i) {
    phase[i][0] = vars.addStateBit("p" + std::to_string(i) + "_0");
    phase[i][1] = vars.addStateBit("p" + std::to_string(i) + "_1");
    token[i] = vars.addStateBit("t" + std::to_string(i));
  }

  auto phaseVec = [&](unsigned i) {
    BitVec v;
    v.push(vars.cur(phase[i][0]));
    v.push(vars.cur(phase[i][1]));
    return v;
  };
  auto hasToken = [&](unsigned i) { return vars.cur(token[i]); };

  const Bdd selOk = n == (1u << selWidth)
                        ? mgr.one()
                        : ult(sel, BitVec::constant(mgr, selWidth, n));

  for (unsigned i = 0; i < n; ++i) {
    const unsigned left = (i + n - 1) % n;
    const Bdd here = eqConst(sel, i) & selOk;
    const Bdd leftSelected = eqConst(sel, left) & selOk;

    const BitVec p = phaseVec(i);
    const Bdd isIdle = eqConst(p, kIdle);
    const Bdd isWant = eqConst(p, kWant);
    const Bdd isCrit = eqConst(p, kCrit);

    // Phase transition of the selected cell.
    const Bdd toWant = here & isIdle & nudge;
    const Bdd toCrit = here & isWant & hasToken(i);
    const Bdd toIdle = here & isCrit;
    BitVec nextPhase = p;
    nextPhase = mux(toWant, BitVec::constant(mgr, 2, kWant), nextPhase);
    nextPhase = mux(toCrit, BitVec::constant(mgr, 2, kCrit), nextPhase);
    nextPhase = mux(toIdle, BitVec::constant(mgr, 2, kIdle), nextPhase);
    fsm_->setNext(phase[i][0], nextPhase.bit(0));
    fsm_->setNext(phase[i][1], nextPhase.bit(1));

    // Token movement.  Cell i's token leaves when i is selected and either
    // releases the critical section or idles the token along; it arrives
    // when the LEFT neighbour does the same.
    const Bdd givesAway =
        here & hasToken(i) & ((isIdle & !nudge) | isCrit);
    const BitVec leftPhase = phaseVec(left);
    const Bdd leftGives = leftSelected & hasToken(left) &
                          ((eqConst(leftPhase, kIdle) & !nudge) |
                           eqConst(leftPhase, kCrit));
    Bdd keep = hasToken(i) & !givesAway;
    if (config.injectBug) {
      // Bug: a releasing CRIT cell keeps its token while also handing a
      // copy to the right neighbour.
      keep = hasToken(i) & !(here & hasToken(i) & isIdle & !nudge);
    }
    fsm_->setNext(token[i], keep | leftGives);
  }

  // ---- init: token at cell 0, everyone idle ----------------------------------
  Bdd init = mgr.one();
  for (unsigned i = 0; i < n; ++i) {
    init &= eqConst(phaseVec(i), kIdle);
    init &= i == 0 ? hasToken(i) : !hasToken(i);
  }
  fsm_->setInit(init);

  // ---- properties: pairwise exclusion + per-cell token discipline ------------
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      fsm_->addInvariant(!(eqConst(phaseVec(i), kCrit) &
                           eqConst(phaseVec(j), kCrit)));
      fsm_->addInvariant(!(hasToken(i) & hasToken(j)));
    }
  }
  for (unsigned i = 0; i < n; ++i) {
    fsm_->addInvariant((!eqConst(phaseVec(i), kCrit)) | hasToken(i));
  }

  const unsigned cells = n;
  fsm_->setStatePrinter([cells, phase, token](const Fsm& fsm,
                                              std::span<const char> values) {
    std::string out;
    for (unsigned i = 0; i < cells; ++i) {
      const unsigned p =
          static_cast<unsigned>(values[fsm.vars().stateBit(phase[i][0]).cur]) |
          (static_cast<unsigned>(values[fsm.vars().stateBit(phase[i][1]).cur])
           << 1);
      const char* name = p == kIdle ? "I" : p == kWant ? "W" : "C";
      out += name;
      out += values[fsm.vars().stateBit(token[i]).cur] != 0 ? "*" : " ";
    }
    return out;
  });
}

}  // namespace icb
