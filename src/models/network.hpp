// Processors communicating through a non-order-preserving network
// (paper Section IV.A, second example).
//
// n processors non-deterministically issue requests into an n-slot network;
// each message carries a valid bit, a req/ack flag and a 4-bit return
// address.  A server non-deterministically converts requests to acks;
// processors non-deterministically consume acks addressed to them.  Every
// processor counts its outstanding requests.
//
// Property (one conjunct per processor): the counter equals the number of
// valid network messages carrying that processor's ID.
//
// The counters are FUNCTIONS of the network contents on every reachable
// state -- which is exactly what the FD baseline [16] exploits: nominate the
// counter bits as dependency candidates and the traversal never builds the
// cross-product of all the counting relations.
//
// Bug injection: on receive, the counter of the *selected* processor is
// decremented instead of the counter of the message's return address.
#pragma once

#include <memory>
#include <vector>

#include "sym/bitvector.hpp"
#include "sym/fsm.hpp"

namespace icb {

struct NetworkConfig {
  unsigned processors = 4;  ///< n < 16 (IDs are 4 bits, as in the paper)
  bool injectBug = false;
};

class NetworkModel {
 public:
  NetworkModel(BddManager& mgr, const NetworkConfig& config);

  [[nodiscard]] Fsm& fsm() { return *fsm_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// FD candidates: every counter bit, MSB-last.
  [[nodiscard]] std::vector<unsigned> fdCandidates() const {
    return counterStateBits_;
  }

  [[nodiscard]] unsigned counterWidth() const { return counterWidth_; }

 private:
  static constexpr unsigned kIdWidth = 4;  // the paper: "IDs are 4 bits each"

  NetworkConfig config_;
  unsigned counterWidth_ = 0;
  std::unique_ptr<Fsm> fsm_;
  std::vector<unsigned> counterStateBits_;
};

}  // namespace icb
