#include "models/pipeline_cpu.hpp"

#include <string>

namespace icb {

namespace {

unsigned log2Exact(unsigned v) {
  unsigned l = 0;
  while ((1u << l) < v) ++l;
  if ((1u << l) != v || v < 2) {
    throw BddUsageError("PipelineCpuModel: registers must be a power of two >= 2");
  }
  return l;
}

/// State-bit indices of one latched instruction.
struct InstrBits {
  std::vector<unsigned> op;   // 3 bits
  std::vector<unsigned> src;  // log2(R) bits
  std::vector<unsigned> dst;  // log2(R) bits
  std::vector<unsigned> imm;  // B bits
};

}  // namespace

PipelineCpuModel::PipelineCpuModel(BddManager& mgr,
                                   const PipelineCpuConfig& config)
    : config_(config), fsm_(std::make_unique<Fsm>(mgr)) {
  const unsigned R = config.registers;
  const unsigned B = config.width;
  const unsigned ridx = log2Exact(R);
  if (B < 1) throw BddUsageError("PipelineCpuModel: width must be >= 1");
  VarManager& vars = fsm_->vars();

  // ---- allocation -----------------------------------------------------------
  // Control first: input instruction fields, latched instruction fields,
  // writeback control.  Then the datapath, bit-sliced across every lane.
  std::vector<unsigned> inOp(3), inSrc(ridx), inDst(ridx), inImm(B);
  for (unsigned j = 0; j < 3; ++j) inOp[j] = vars.addInputBit("i_op" + std::to_string(j));
  for (unsigned j = 0; j < ridx; ++j) inSrc[j] = vars.addInputBit("i_src" + std::to_string(j));
  for (unsigned j = 0; j < ridx; ++j) inDst[j] = vars.addInputBit("i_dst" + std::to_string(j));

  auto allocInstrCtl = [&](const std::string& p) {
    InstrBits ib;
    for (unsigned j = 0; j < 3; ++j) ib.op.push_back(vars.addStateBit(p + "_op" + std::to_string(j)));
    for (unsigned j = 0; j < ridx; ++j) ib.src.push_back(vars.addStateBit(p + "_src" + std::to_string(j)));
    for (unsigned j = 0; j < ridx; ++j) ib.dst.push_back(vars.addStateBit(p + "_dst" + std::to_string(j)));
    return ib;
  };
  InstrBits i2 = allocInstrCtl("i2");    // pipeline decode/execute latch
  InstrBits d1 = allocInstrCtl("d1");    // spec delay 1
  InstrBits d2 = allocInstrCtl("d2");    // spec delay 2
  const unsigned wWe = vars.addStateBit("w_we");
  const unsigned wBr = vars.addStateBit("w_br");
  std::vector<unsigned> wDst(ridx);
  for (unsigned j = 0; j < ridx; ++j) wDst[j] = vars.addStateBit("w_dst" + std::to_string(j));

  // Datapath lanes, interleaved per bit: input imm, latched imms, writeback
  // value, implementation registers, specification registers.
  std::vector<unsigned> wVal(B);
  std::vector<std::vector<unsigned>> rf(R, std::vector<unsigned>(B));
  std::vector<std::vector<unsigned>> srf(R, std::vector<unsigned>(B));
  for (unsigned j = 0; j < B; ++j) {
    inImm[j] = vars.addInputBit("i_imm" + std::to_string(j));
    i2.imm.push_back(vars.addStateBit("i2_imm" + std::to_string(j)));
    d1.imm.push_back(vars.addStateBit("d1_imm" + std::to_string(j)));
    d2.imm.push_back(vars.addStateBit("d2_imm" + std::to_string(j)));
    wVal[j] = vars.addStateBit("w_val" + std::to_string(j));
    for (unsigned r = 0; r < R; ++r) {
      rf[r][j] = vars.addStateBit("rf" + std::to_string(r) + "_b" + std::to_string(j));
      srf[r][j] = vars.addStateBit("srf" + std::to_string(r) + "_b" + std::to_string(j));
    }
  }

  auto curVec = [&](const std::vector<unsigned>& bits) {
    BitVec v;
    for (const unsigned b : bits) v.push(vars.cur(b));
    return v;
  };

  // ---- shared instruction semantics ------------------------------------------
  struct Exec {
    Bdd we;        // writes a register
    BitVec dstSel; // destination index
    BitVec value;  // value written
    Bdd isBr;
  };
  // Computes what an instruction does against a register-read function.
  auto execute = [&](const BitVec& op, const BitVec& src, const BitVec& dst,
                     const BitVec& imm, auto readReg) {
    Exec e;
    const Bdd isLd = eqConst(op, kLd);
    const Bdd isAdd = eqConst(op, kAdd);
    const Bdd isSub = eqConst(op, kSub);
    const Bdd isMov = eqConst(op, kMov);
    const Bdd isSr = eqConst(op, kSr);
    e.isBr = eqConst(op, kBr);
    e.we = isLd | isAdd | isSub | isMov | isSr;
    e.dstSel = dst;

    // Operand fetch through the provided read path (bypassed or not).
    BitVec srcVal = BitVec::constant(mgr, B, 0);
    BitVec dstVal = BitVec::constant(mgr, B, 0);
    for (unsigned r = 0; r < R; ++r) {
      srcVal = mux(eqConst(src, r), readReg(r), srcVal);
      dstVal = mux(eqConst(dst, r), readReg(r), dstVal);
    }

    BitVec value = BitVec::constant(mgr, B, 0);
    value = mux(isLd, imm, value);
    value = mux(isAdd, addTrunc(dstVal, srcVal), value);
    value = mux(isSub, subTrunc(dstVal, srcVal), value);
    value = mux(isMov, srcVal, value);
    value = mux(isSr, dstVal.shiftRight(1), value);
    e.value = value;
    return e;
  };

  // ---- fetch with branch stall -------------------------------------------------
  const BitVec i2op = curVec(i2.op);
  const Bdd stall = eqConst(i2op, kBr) | vars.cur(wBr);
  auto stalledField = [&](const std::vector<unsigned>& ins) {
    BitVec v;
    for (const unsigned i : ins) v.push((!stall) & vars.input(i));
    return v;  // forced to NOP (all-zero fields) during a stall
  };
  const BitVec fOp = stalledField(inOp);
  const BitVec fSrc = stalledField(inSrc);
  const BitVec fDst = stalledField(inDst);
  const BitVec fImm = stalledField(inImm);

  auto setVec = [&](const std::vector<unsigned>& bits, const BitVec& v) {
    for (unsigned j = 0; j < bits.size(); ++j) fsm_->setNext(bits[j], v.bit(j));
  };

  // Fetch -> I2 (impl) and -> D1 (spec); D1 -> D2.
  setVec(i2.op, fOp);
  setVec(i2.src, fSrc);
  setVec(i2.dst, fDst);
  setVec(i2.imm, fImm);
  setVec(d1.op, fOp);
  setVec(d1.src, fSrc);
  setVec(d1.dst, fDst);
  setVec(d1.imm, fImm);
  setVec(d2.op, curVec(d1.op));
  setVec(d2.src, curVec(d1.src));
  setVec(d2.dst, curVec(d1.dst));
  setVec(d2.imm, curVec(d1.imm));

  // ---- implementation: execute I2 with bypass from the writeback latch ---------
  const Bdd wWeCur = vars.cur(wWe);
  const BitVec wDstCur = curVec(wDst);
  const BitVec wValCur = curVec(wVal);
  auto readBypassed = [&](unsigned r) {
    const Bdd hit = wWeCur & eqConst(wDstCur, r);
    if (config_.injectBug) return curVec(rf[r]);  // bug: no bypass
    return mux(hit, wValCur, curVec(rf[r]));
  };
  const Exec ex = execute(i2op, curVec(i2.src), curVec(i2.dst), curVec(i2.imm),
                          readBypassed);
  fsm_->setNext(wWe, ex.we);
  fsm_->setNext(wBr, ex.isBr);
  setVec(wDst, ex.dstSel);
  setVec(wVal, ex.value);

  // Writeback: the latch contents retire into the register file.
  for (unsigned r = 0; r < R; ++r) {
    const Bdd hit = wWeCur & eqConst(wDstCur, r);
    setVec(rf[r], mux(hit, wValCur, curVec(rf[r])));
  }

  // ---- specification: execute D2 against SRF in one step -----------------------
  auto readSpec = [&](unsigned r) { return curVec(srf[r]); };
  const Exec sx = execute(curVec(d2.op), curVec(d2.src), curVec(d2.dst),
                          curVec(d2.imm), readSpec);
  for (unsigned r = 0; r < R; ++r) {
    const Bdd hit = sx.we & eqConst(sx.dstSel, r);
    setVec(srf[r], mux(hit, sx.value, curVec(srf[r])));
  }

  // ---- init: everything zero (NOP latches, zero registers) ---------------------
  Bdd init = mgr.one();
  auto zeroed = [&](const std::vector<unsigned>& bits) {
    for (const unsigned b : bits) init &= !vars.cur(b);
  };
  zeroed(i2.op); zeroed(i2.src); zeroed(i2.dst); zeroed(i2.imm);
  zeroed(d1.op); zeroed(d1.src); zeroed(d1.dst); zeroed(d1.imm);
  zeroed(d2.op); zeroed(d2.src); zeroed(d2.dst); zeroed(d2.imm);
  init &= (!vars.cur(wWe)) & (!vars.cur(wBr));
  zeroed(wDst); zeroed(wVal);
  for (unsigned r = 0; r < R; ++r) {
    zeroed(rf[r]);
    zeroed(srf[r]);
  }
  fsm_->setInit(init);

  // ---- property: register files agree, one conjunct per register ----------------
  for (unsigned r = 0; r < R; ++r) {
    fsm_->addInvariant(eq(curVec(rf[r]), curVec(srf[r])));
  }

  const unsigned Rc = R;
  const unsigned Bc = B;
  fsm_->setStatePrinter([Rc, Bc, rf, srf](const Fsm& fsm,
                                          std::span<const char> values) {
    auto decode = [&](const std::vector<unsigned>& bits) {
      unsigned v = 0;
      for (unsigned j = 0; j < bits.size(); ++j) {
        if (values[fsm.vars().stateBit(bits[j]).cur] != 0) v |= 1u << j;
      }
      return v;
    };
    std::string out = "rf=[";
    for (unsigned r = 0; r < Rc; ++r) {
      if (r != 0) out += ",";
      out += std::to_string(decode(rf[r]));
    }
    out += "] srf=[";
    for (unsigned r = 0; r < Rc; ++r) {
      if (r != 0) out += ",";
      out += std::to_string(decode(srf[r]));
    }
    out += "]";
    (void)Bc;
    return out;
  });
}

}  // namespace icb
