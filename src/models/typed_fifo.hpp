// Typed FIFO queue (paper Section IV.A, first example).
//
// An 8-bit-wide shift-register FIFO whose input stream obeys a type
// constraint: every item is between 0 and 128 inclusive.  The property is
// that every entry always obeys the constraint.
//
// The state variables use the standard datapath ordering heuristic the paper
// cites ([19]): bit slices interleaved across all entries.  Under that order
// each per-entry constraint "entry <= 128" is a 9-node BDD, but their
// CONJUNCTION must remember, per entry, whether the MSB was set -- so the
// monolithic G (what Fwd/Bkwd build) grows exponentially with the depth
// while the implicit conjunction stays at depth x 9 nodes.
//
// Typed input encoding: a selector bit chooses between the value 128
// (MSB set, low bits forced to zero) and an arbitrary 7-bit value, yielding
// exactly the range [0, 128] without constraining inputs.
//
// Bug injection: the low input bit leaks through when the selector picks
// 128, so the value 129 can enter the queue.
#pragma once

#include <cstdint>
#include <memory>

#include "sym/bitvector.hpp"
#include "sym/fsm.hpp"

namespace icb {

struct TypedFifoConfig {
  unsigned depth = 5;
  unsigned width = 8;  ///< bits per entry; the type bound is 2^(width-1)
  bool injectBug = false;
};

class TypedFifoModel {
 public:
  TypedFifoModel(BddManager& mgr, const TypedFifoConfig& config);

  [[nodiscard]] Fsm& fsm() { return *fsm_; }
  [[nodiscard]] const TypedFifoConfig& config() const { return config_; }

  /// FD candidates: none (no variable is functionally dependent here).
  [[nodiscard]] std::vector<unsigned> fdCandidates() const { return {}; }

  /// Entry `i` of the queue as a bit vector over current-state vars
  /// (index 0 is the entry the input shifts into).
  [[nodiscard]] const BitVec& entry(unsigned i) const { return entries_[i]; }

  /// The type bound (128 for the paper's 8-bit configuration).
  [[nodiscard]] std::uint64_t bound() const {
    return std::uint64_t{1} << (config_.width - 1);
  }

 private:
  TypedFifoConfig config_;
  std::unique_ptr<Fsm> fsm_;
  std::vector<BitVec> entries_;
  std::vector<std::vector<unsigned>> entryBits_;  // state-bit indices
};

}  // namespace icb
