#include "models/typed_fifo.hpp"

#include <string>

namespace icb {

TypedFifoModel::TypedFifoModel(BddManager& mgr, const TypedFifoConfig& config)
    : config_(config), fsm_(std::make_unique<Fsm>(mgr)) {
  const unsigned depth = config.depth;
  const unsigned width = config.width;
  if (depth == 0 || width < 2) {
    throw BddUsageError("TypedFifoModel: need depth >= 1, width >= 2");
  }
  VarManager& vars = fsm_->vars();

  // Input: selector + (width-1) low bits.
  const unsigned selIn = vars.addInputBit("in_sel");
  std::vector<unsigned> lowIn;

  // Bit-slice interleaved allocation: for each bit position, the input's
  // low bit (if any) then that bit of every entry.
  entryBits_.assign(depth, std::vector<unsigned>(width));
  for (unsigned j = 0; j < width; ++j) {
    if (j < width - 1) {
      lowIn.push_back(vars.addInputBit("in_b" + std::to_string(j)));
    }
    for (unsigned e = 0; e < depth; ++e) {
      entryBits_[e][j] =
          vars.addStateBit("q" + std::to_string(e) + "_b" + std::to_string(j));
    }
  }

  entries_.reserve(depth);
  for (unsigned e = 0; e < depth; ++e) {
    std::vector<Bdd> bits;
    bits.reserve(width);
    for (unsigned j = 0; j < width; ++j) bits.push_back(vars.cur(entryBits_[e][j]));
    entries_.emplace_back(std::move(bits));
  }

  // Typed input value: sel ? 2^(width-1) : low bits.
  const Bdd sel = vars.input(selIn);
  BitVec inputValue;
  for (unsigned j = 0; j < width; ++j) {
    if (j == width - 1) {
      inputValue.push(sel);
    } else if (config.injectBug && j == 0) {
      // Bug: the low bit leaks even when the selector picks the bound,
      // admitting the out-of-range value 2^(width-1) + 1.
      inputValue.push(vars.input(lowIn[j]));
    } else {
      inputValue.push((!sel) & vars.input(lowIn[j]));
    }
  }

  // Shift register: entry 0 takes the input, entry e takes entry e-1.
  for (unsigned j = 0; j < width; ++j) {
    fsm_->setNext(entryBits_[0][j], inputValue.bit(j));
    for (unsigned e = 1; e < depth; ++e) {
      fsm_->setNext(entryBits_[e][j], vars.cur(entryBits_[e - 1][j]));
    }
  }

  // Initially the queue holds zeros (well-typed).
  Bdd init = mgr.one();
  for (unsigned e = 0; e < depth; ++e) {
    init &= eqConst(entries_[e], 0);
  }
  fsm_->setInit(init);

  // Property: every entry obeys the type constraint -- one conjunct per
  // entry, each a (width+1)-node comparator.
  for (unsigned e = 0; e < depth; ++e) {
    fsm_->addInvariant(uleConst(entries_[e], bound()));
  }

  fsm_->setStatePrinter(
      [entries = entries_](const Fsm&, std::span<const char> values) {
        std::string out = "queue=[";
        for (std::size_t e = 0; e < entries.size(); ++e) {
          if (e != 0) out += ", ";
          out += std::to_string(entries[e].evalUint(values));
        }
        out += "]";
        return out;
      });
}

}  // namespace icb
