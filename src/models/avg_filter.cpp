#include "models/avg_filter.hpp"

#include <string>

namespace icb {

namespace {

unsigned log2Exact(unsigned v) {
  unsigned l = 0;
  while ((1u << l) < v) ++l;
  if ((1u << l) != v) {
    throw BddUsageError("AvgFilterModel: depth must be a power of two");
  }
  return l;
}

/// Balanced-tree sum of a vector of BitVecs with full carry-out growth.
BitVec treeSum(std::vector<BitVec> terms) {
  while (terms.size() > 1) {
    std::vector<BitVec> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

}  // namespace

AvgFilterModel::AvgFilterModel(BddManager& mgr, const AvgFilterConfig& config)
    : config_(config), fsm_(std::make_unique<Fsm>(mgr)) {
  const unsigned d = config.depth;
  const unsigned w = config.sampleWidth;
  layers_ = log2Exact(d);
  const unsigned L = layers_;
  if (d < 2 || w < 2) {
    throw BddUsageError("AvgFilterModel: need depth >= 2, sampleWidth >= 2");
  }
  VarManager& vars = fsm_->vars();

  // ---- bit-slice interleaved allocation ------------------------------------
  std::vector<unsigned> inputBitVars(w);
  std::vector<std::vector<unsigned>> window(d);        // [entry][bit]
  std::vector<std::vector<std::vector<unsigned>>> stage(L + 1);  // [layer][i][bit]
  std::vector<std::vector<unsigned>> fifo(L + 1);      // [l][bit], l = 1..L
  for (unsigned l = 1; l <= L; ++l) {
    stage[l].assign(d >> l, std::vector<unsigned>(w + l));
    fifo[l].assign(w, 0);
  }
  for (auto& e : window) e.assign(w, 0);

  for (unsigned j = 0; j < w + L; ++j) {
    if (j < w) {
      inputBitVars[j] = vars.addInputBit("x_b" + std::to_string(j));
      for (unsigned k = 0; k < d; ++k) {
        window[k][j] = vars.addStateBit("w" + std::to_string(k) + "_b" +
                                        std::to_string(j));
      }
    }
    for (unsigned l = 1; l <= L; ++l) {
      if (j >= w + l) continue;
      for (unsigned i = 0; i < (d >> l); ++i) {
        stage[l][i][j] = vars.addStateBit("s" + std::to_string(l) + "_" +
                                          std::to_string(i) + "_b" +
                                          std::to_string(j));
      }
    }
    if (j < w) {
      for (unsigned l = 1; l <= L; ++l) {
        fifo[l][j] =
            vars.addStateBit("f" + std::to_string(l) + "_b" + std::to_string(j));
      }
    }
  }

  auto curVec = [&](const std::vector<unsigned>& bits) {
    BitVec v;
    for (const unsigned b : bits) v.push(vars.cur(b));
    return v;
  };

  BitVec input;
  for (unsigned j = 0; j < w; ++j) input.push(vars.input(inputBitVars[j]));

  // ---- implementation: window shift + pipelined adder tree ------------------
  for (unsigned j = 0; j < w; ++j) {
    fsm_->setNext(window[0][j], input.bit(j));
    for (unsigned k = 1; k < d; ++k) {
      fsm_->setNext(window[k][j], vars.cur(window[k - 1][j]));
    }
  }

  for (unsigned l = 1; l <= L; ++l) {
    for (unsigned i = 0; i < (d >> l); ++i) {
      const BitVec a = l == 1 ? curVec(window[2 * i]) : curVec(stage[l - 1][2 * i]);
      const BitVec b =
          l == 1 ? curVec(window[2 * i + 1]) : curVec(stage[l - 1][2 * i + 1]);
      BitVec sum;
      if (config.injectBug && l == 1) {
        sum = addTrunc(a, b).resized(w + 1);  // dropped carry
      } else {
        sum = add(a, b);
      }
      for (unsigned j = 0; j < w + l; ++j) {
        fsm_->setNext(stage[l][i][j], sum.bit(j));
      }
    }
  }

  // ---- specification: direct average + delay FIFO ---------------------------
  {
    std::vector<BitVec> samples;
    samples.reserve(d);
    for (unsigned k = 0; k < d; ++k) samples.push_back(curVec(window[k]));
    const BitVec avg = treeSum(std::move(samples)).dropLow(L);  // width w
    for (unsigned j = 0; j < w; ++j) {
      fsm_->setNext(fifo[1][j], avg.bit(j));
      for (unsigned l = 2; l <= L; ++l) {
        fsm_->setNext(fifo[l][j], vars.cur(fifo[l - 1][j]));
      }
    }
  }

  // ---- init: everything zero -------------------------------------------------
  Bdd init = mgr.one();
  for (unsigned k = 0; k < d; ++k) init &= eqConst(curVec(window[k]), 0);
  for (unsigned l = 1; l <= L; ++l) {
    for (unsigned i = 0; i < (d >> l); ++i) {
      init &= eqConst(curVec(stage[l][i]), 0);
    }
    init &= eqConst(curVec(fifo[l]), 0);
  }
  fsm_->setInit(init);

  // ---- property: the two outputs agree ----------------------------------------
  const BitVec implOut = curVec(stage[L][0]).dropLow(L);
  fsm_->addInvariant(eq(implOut, curVec(fifo[L])));

  // ---- assisting invariants (Table 1): per-layer averages match the FIFO ------
  for (unsigned l = 1; l < L; ++l) {
    std::vector<BitVec> terms;
    for (unsigned i = 0; i < (d >> l); ++i) terms.push_back(curVec(stage[l][i]));
    const BitVec layerAvg = treeSum(std::move(terms)).dropLow(L);
    fsm_->addAssistInvariant(eq(layerAvg, curVec(fifo[l])));
  }

  const unsigned Lc = L;
  std::vector<unsigned> implBits = stage[L][0];
  std::vector<unsigned> specBits = fifo[L];
  fsm_->setStatePrinter([Lc, implBits, specBits](
                            const Fsm& fsm, std::span<const char> values) {
    auto decode = [&](const std::vector<unsigned>& bits) {
      unsigned v = 0;
      for (unsigned j = 0; j < bits.size(); ++j) {
        if (values[fsm.vars().stateBit(bits[j]).cur] != 0) v |= 1u << j;
      }
      return v;
    };
    return "impl_out=" + std::to_string(decode(implBits) >> Lc) +
           " spec_out=" + std::to_string(decode(specBits));
  });
}

}  // namespace icb
