#include "models/network.hpp"

#include <string>

namespace icb {

namespace {

unsigned bitsFor(unsigned maxValue) {
  unsigned bits = 1;
  while ((1u << bits) <= maxValue) ++bits;
  return bits;
}

}  // namespace

NetworkModel::NetworkModel(BddManager& mgr, const NetworkConfig& config)
    : config_(config), fsm_(std::make_unique<Fsm>(mgr)) {
  const unsigned n = config.processors;
  if (n < 2 || n >= 16) {
    throw BddUsageError("NetworkModel: need 2 <= processors < 16");
  }
  counterWidth_ = bitsFor(n);  // counters range over 0..n
  const unsigned slotSelWidth = bitsFor(n - 1);
  VarManager& vars = fsm_->vars();

  // ---- inputs: action, slot choice, processor choice ----------------------
  BitVec act;
  for (unsigned j = 0; j < 2; ++j) {
    act.push(vars.input(vars.addInputBit("act" + std::to_string(j))));
  }
  BitVec slotSel;
  for (unsigned j = 0; j < slotSelWidth; ++j) {
    slotSel.push(vars.input(vars.addInputBit("slot" + std::to_string(j))));
  }
  BitVec procSel;
  for (unsigned j = 0; j < kIdWidth; ++j) {
    procSel.push(vars.input(vars.addInputBit("proc" + std::to_string(j))));
  }

  // ---- state: per-slot message fields, then per-processor counters --------
  struct Slot {
    unsigned valid;
    unsigned isAck;
    std::vector<unsigned> addr;
  };
  std::vector<Slot> slots(n);
  for (unsigned s = 0; s < n; ++s) {
    const std::string p = "s" + std::to_string(s) + "_";
    slots[s].valid = vars.addStateBit(p + "valid");
    slots[s].isAck = vars.addStateBit(p + "ack");
    for (unsigned j = 0; j < kIdWidth; ++j) {
      slots[s].addr.push_back(vars.addStateBit(p + "addr" + std::to_string(j)));
    }
  }
  std::vector<std::vector<unsigned>> counters(n);
  for (unsigned p = 0; p < n; ++p) {
    for (unsigned j = 0; j < counterWidth_; ++j) {
      counters[p].push_back(vars.addStateBit("c" + std::to_string(p) + "_" +
                                             std::to_string(j)));
    }
  }
  counterStateBits_.clear();
  for (unsigned p = 0; p < n; ++p) {
    for (const unsigned b : counters[p]) counterStateBits_.push_back(b);
  }

  auto slotValid = [&](unsigned s) { return vars.cur(slots[s].valid); };
  auto slotAck = [&](unsigned s) { return vars.cur(slots[s].isAck); };
  auto slotAddr = [&](unsigned s) {
    BitVec v;
    for (const unsigned b : slots[s].addr) v.push(vars.cur(b));
    return v;
  };
  auto counterVec = [&](unsigned p) {
    BitVec v;
    for (const unsigned b : counters[p]) v.push(vars.cur(b));
    return v;
  };

  // ---- action decoding -----------------------------------------------------
  const Bdd actIssue = eqConst(act, 1);
  const Bdd actServe = eqConst(act, 2);
  const Bdd actReceive = eqConst(act, 3);
  const Bdd procOk = ult(procSel, BitVec::constant(mgr, kIdWidth, n));
  const Bdd slotOk = n == (1u << slotSelWidth)
                         ? mgr.one()
                         : ult(slotSel, BitVec::constant(mgr, slotSelWidth, n));

  // Per-slot enable signals.
  std::vector<Bdd> issueThis(n), serveThis(n), receiveThis(n);
  for (unsigned s = 0; s < n; ++s) {
    const Bdd here = eqConst(slotSel, s) & slotOk;
    issueThis[s] = actIssue & here & !slotValid(s) & procOk;
    serveThis[s] = actServe & here & slotValid(s) & !slotAck(s);
    receiveThis[s] = actReceive & here & slotValid(s) & slotAck(s);
  }

  // ---- next-state functions -------------------------------------------------
  for (unsigned s = 0; s < n; ++s) {
    fsm_->setNext(slots[s].valid,
                  issueThis[s] | (slotValid(s) & !receiveThis[s]));
    fsm_->setNext(slots[s].isAck,
                  issueThis[s].ite(mgr.zero(), serveThis[s] | slotAck(s)));
    const BitVec addrNext = mux(issueThis[s], procSel, slotAddr(s));
    for (unsigned j = 0; j < kIdWidth; ++j) {
      fsm_->setNext(slots[s].addr[j], addrNext.bit(j));
    }
  }

  for (unsigned p = 0; p < n; ++p) {
    const Bdd mine = eqConst(procSel, p);
    // Increment when this processor successfully issues anywhere.
    Bdd inc = mgr.zero();
    for (unsigned s = 0; s < n; ++s) inc |= issueThis[s] & mine;
    // Decrement when an ack addressed to this processor is received
    // (bug: when the *selected* processor receives, regardless of address).
    Bdd dec = mgr.zero();
    for (unsigned s = 0; s < n; ++s) {
      const Bdd target =
          config.injectBug ? mine : eqConst(slotAddr(s), p);
      dec |= receiveThis[s] & target;
    }
    const BitVec c = counterVec(p);
    const BitVec next = mux(inc, incTrunc(c), mux(dec, decTrunc(c), c));
    for (unsigned j = 0; j < counterWidth_; ++j) {
      fsm_->setNext(counters[p][j], next.bit(j));
    }
  }

  // ---- initial states: empty network, zero counters --------------------------
  Bdd init = mgr.one();
  for (unsigned s = 0; s < n; ++s) {
    init &= (!slotValid(s)) & (!slotAck(s)) & eqConst(slotAddr(s), 0);
  }
  for (unsigned p = 0; p < n; ++p) init &= eqConst(counterVec(p), 0);
  fsm_->setInit(init);

  // ---- property: counter_p == #{valid messages addressed to p} ---------------
  for (unsigned p = 0; p < n; ++p) {
    BitVec count = BitVec::constant(mgr, counterWidth_, 0);
    for (unsigned s = 0; s < n; ++s) {
      BitVec indicator;
      indicator.push(slotValid(s) & eqConst(slotAddr(s), p));
      count = addTrunc(count.resized(counterWidth_), indicator);
    }
    fsm_->addInvariant(eq(counterVec(p), count));
  }

  const unsigned procs = n;
  const unsigned cw = counterWidth_;
  fsm_->setStatePrinter([procs, cw, slots, counters](
                            const Fsm& fsm, std::span<const char> values) {
    std::string out = "net=[";
    for (unsigned s = 0; s < procs; ++s) {
      if (s != 0) out += " ";
      if (values[fsm.vars().stateBit(slots[s].valid).cur] == 0) {
        out += "-";
        continue;
      }
      out += values[fsm.vars().stateBit(slots[s].isAck).cur] != 0 ? "A" : "R";
      unsigned addr = 0;
      for (unsigned j = 0; j < kIdWidth; ++j) {
        if (values[fsm.vars().stateBit(slots[s].addr[j]).cur] != 0) {
          addr |= 1u << j;
        }
      }
      out += std::to_string(addr);
    }
    out += "] counters=[";
    for (unsigned p = 0; p < procs; ++p) {
      if (p != 0) out += ",";
      unsigned c = 0;
      for (unsigned j = 0; j < cw; ++j) {
        if (values[fsm.vars().stateBit(counters[p][j]).cur] != 0) c |= 1u << j;
      }
      out += std::to_string(c);
    }
    out += "]";
    return out;
  });
}

}  // namespace icb
