// Token-ring mutual exclusion -- the "rings of mutual exclusion elements"
// family the paper's introduction cites as the staple benchmark of early
// BDD verifiers.  Included as a fifth model exercising a property that is
// naturally a LARGE implicit conjunction of TINY conjuncts: pairwise
// exclusion over all cell pairs.
//
// N cells in a ring.  Each cell has a 2-bit phase (IDLE, WANT, CRIT) and a
// token bit.  A scheduler input selects one cell per step:
//   * IDLE, nudge input set        -> WANT
//   * WANT and holding the token   -> CRIT
//   * CRIT                         -> IDLE, token passes to the right
//   * IDLE and holding the token, nudge clear -> token passes to the right
// All other cells hold their state.
//
// Properties (implicit conjunction):
//   * per unordered pair (i, j): not both in CRIT,
//   * per pair: not both holding the token,
//   * per cell: CRIT implies holding the token.
//
// Bug injection: releasing the critical section *copies* the token to the
// right neighbour instead of passing it, so two tokens (and eventually two
// critical sections) appear.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "sym/bitvector.hpp"
#include "sym/fsm.hpp"

namespace icb {

struct MutexRingConfig {
  unsigned cells = 4;  ///< ring size, >= 2
  bool injectBug = false;
};

class MutexRingModel {
 public:
  MutexRingModel(BddManager& mgr, const MutexRingConfig& config);

  [[nodiscard]] Fsm& fsm() { return *fsm_; }
  [[nodiscard]] const MutexRingConfig& config() const { return config_; }

  [[nodiscard]] std::vector<unsigned> fdCandidates() const { return {}; }

  enum Phase : unsigned { kIdle = 0, kWant = 1, kCrit = 2 };

 private:
  MutexRingConfig config_;
  std::unique_ptr<Fsm> fsm_;
};

}  // namespace icb
