// Moving-average filter (paper Figure 2; Tables 1 and 2).
//
//                8-bit samples --------------------------+
//   IMPLEMENTATION                         SPECIFICATION |
//   window shift register  w[0..d-1]  <------------------+
//        |   |   |   |
//       Add Add Add Add     (layer 1, registered)     Average = sum(w) >> L
//         \   /   \  /                                     |
//          Add     Add      (layer 2, registered)      delay FIFO f[1..L]
//             \   /                                        |
//              Add          (layer L, registered)         |
//               |                                          |
//          >> L (discard)                                  |
//               +--------------  equal?  ------------------+
//
// Both sides consume the same sample stream.  The spec computes the average
// combinationally and delays it L = log2(depth) cycles to match the
// pipeline.  The property is that the two outputs always agree.
//
// Assisting invariants (Table 1 runs): per adder-tree layer l, the layer's
// total, divided by d, equals delay-FIFO entry l -- exactly the lemmas the
// paper says the XICI policy re-derives automatically in Table 2.
//
// Bug injection: the layer-1 adders drop their carry bit.
#pragma once

#include <memory>
#include <vector>

#include "sym/bitvector.hpp"
#include "sym/fsm.hpp"

namespace icb {

struct AvgFilterConfig {
  unsigned depth = 4;       ///< window size; must be a power of two >= 2
  unsigned sampleWidth = 8; ///< bits per sample (the paper uses 8)
  bool injectBug = false;
};

class AvgFilterModel {
 public:
  AvgFilterModel(BddManager& mgr, const AvgFilterConfig& config);

  [[nodiscard]] Fsm& fsm() { return *fsm_; }
  [[nodiscard]] const AvgFilterConfig& config() const { return config_; }
  [[nodiscard]] unsigned layers() const { return layers_; }

  [[nodiscard]] std::vector<unsigned> fdCandidates() const { return {}; }

 private:
  AvgFilterConfig config_;
  unsigned layers_ = 0;
  std::unique_ptr<Fsm> fsm_;
};

}  // namespace icb
