// PagedStore<T>: a paged, spill-to-disk record arena (ROADMAP item 3).
//
// A PagedStore is the std::vector drop-in the NodeStore mounts its packed
// node arena on (docs/node_layout.md): records live in fixed-size pages of
// 2^kPageShift records each, reached as pages_[i >> kPageShift] ->
// recs[i & kPageMask].  Until the spill tier engages, that is the whole
// story -- every page is resident, no bookkeeping runs, and the only cost
// over a flat vector is one extra indirection.  After engage():
//
//   * a resident budget caps how many pages keep their in-RAM buffer;
//   * access to a non-resident page faults it in from the PageFile
//     (write-back scratch file, one slot per page index);
//   * going over budget evicts pages CLOCK-style (second-chance on a
//     referenced bit), writing dirty pages back first.  Eviction happens
//     ONLY while servicing a fault or exposing fresh records -- a resident
//     record access never evicts, so a reference obtained from operator[]
//     stays valid until the *next* page miss.  Page 0 (the terminal and
//     projection nodes) is pinned, and the most recently touched page is
//     never the victim, which together make the store's audited
//     single-page reference scopes safe (docs/external_memory.md).
//
// Vector semantics the arena relies on are preserved exactly: records
// exposed by resize-up, push_back, or emplace_back are zero -- even when
// the index range was used before a truncation, and even when the stale
// bytes live only in the spill file.  Addresses of live records never move
// (pages are reached through per-page buffers), which is MORE stable than
// a vector: the concurrent-mode "no reallocation mid-region" rule holds
// structurally.
//
// The spill tier is single-threaded by design: it never engages while the
// store is inside a concurrent region (the manager forces the serial apply
// path once spilling), so none of the bookkeeping needs atomics.  When not
// engaged, concurrent readers see exactly the vector guarantees: no
// mutable state is touched on the access path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/timer.hpp"
#include "xmem/page_file.hpp"
#include "xmem/stats.hpp"

namespace icb::xmem {

template <typename T>
class PagedStore {
  static_assert(std::is_trivially_copyable_v<T>,
                "pages are spilled as raw bytes");

 public:
  /// log2 records per page: 1024 records -- 16 KiB pages for a 16-byte
  /// record, small enough that a tiny resident budget still leaves room
  /// for CLOCK to rotate (the CI spill gate runs with a few pages).
  static constexpr std::size_t kPageShift = 10;
  static constexpr std::size_t kPageRecords = std::size_t{1} << kPageShift;
  static constexpr std::size_t kPageMask = kPageRecords - 1;
  static constexpr std::size_t kPageBytes = kPageRecords * sizeof(T);
  /// Smallest usable resident budget: the pinned page 0, the
  /// most-recently-touched page, and one page CLOCK can actually turn over.
  static constexpr std::size_t kMinResidentPages = 3;

  PagedStore() = default;

  // ---- vector surface ------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& operator[](std::size_t i) { return at(i, /*write=*/true); }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return const_cast<PagedStore*>(this)->at(i, /*write=*/false);
  }

  /// Capacity hint: pre-sizes the page table only (buffers are made on
  /// demand), mirroring vector::reserve's no-construction contract.
  void reserve(std::size_t n) {
    pages_.reserve((n + kPageRecords - 1) >> kPageShift);
  }

  /// Grows with zero-filled records / shrinks keeping buffers, exactly like
  /// a vector of zero-initializing records.  Zeroing on re-exposure is
  /// load-bearing: the packed-node field packers preserve a record's other
  /// bits, and concurrent-mode padding must decode as all-zero
  /// (docs/node_layout.md).
  void resize(std::size_t n) {
    if (n > size_) exposeRecords(size_, n);
    size_ = n;
  }

  void push_back(const T& value) {
    exposeRecords(size_, size_ + 1);
    ++size_;
    at(size_ - 1, /*write=*/true) = value;
  }

  T& emplace_back() {
    exposeRecords(size_, size_ + 1);
    ++size_;
    return at(size_ - 1, /*write=*/true);
  }

  // ---- spill control -------------------------------------------------------

  /// Turns the spill tier on: at most `budgetPages` pages (floored at
  /// kMinResidentPages) keep resident buffers, the rest round-trip through
  /// `file` (already open, slot size kPageBytes).  Immediately evicts down
  /// to budget.  `file` and `stats` must outlive the store's engagement.
  void engage(std::size_t budgetPages, PageFile* file, PagerStats* stats) {
    budgetPages_ = budgetPages < kMinResidentPages ? kMinResidentPages
                                                   : budgetPages;
    file_ = file;
    stats_ = stats;
    engaged_ = true;
    // Pre-engagement pages have no disk copy: only a dirty mark makes
    // eviction write them back instead of dropping live records.
    for (Page& p : pages_) {
      if (p.recs != nullptr) p.dirty = true;
    }
    maybeEvict();
  }

  [[nodiscard]] bool engaged() const { return engaged_; }
  [[nodiscard]] std::size_t residentPages() const { return residentCount_; }
  [[nodiscard]] std::size_t budgetPages() const { return budgetPages_; }
  [[nodiscard]] std::size_t pageCount() const { return pages_.size(); }

  /// Bytes of resident record buffers right now.
  [[nodiscard]] std::uint64_t residentBytes() const {
    return static_cast<std::uint64_t>(residentCount_) * kPageBytes;
  }

  /// Bookkeeping overhead: the page-table entries themselves.
  [[nodiscard]] std::uint64_t metadataBytes() const {
    return static_cast<std::uint64_t>(pages_.capacity()) * sizeof(Page);
  }

 private:
  struct Page {
    std::unique_ptr<T[]> recs;  ///< null when evicted (engaged mode only)
    bool dirty = false;         ///< resident copy newer than the disk slot
    bool everWritten = false;   ///< the disk slot holds a copy of this page
    bool referenced = false;    ///< CLOCK second-chance bit
  };

  static constexpr std::size_t kNoPage = static_cast<std::size_t>(-1);

  T& at(std::size_t i, bool write) {
    const std::size_t pi = i >> kPageShift;
    Page& p = pages_[pi];
    if (!engaged_) return p.recs[i & kPageMask];
    if (p.recs == nullptr) faultIn(pi);
    p.referenced = true;
    lastPage_ = pi;
    if (write) p.dirty = true;
    return p.recs[i & kPageMask];
  }

  /// Makes records [lo, hi) exist and read as zero, whatever their history
  /// (live resident bytes, an evicted page's disk copy, or nothing yet).
  void exposeRecords(std::size_t lo, std::size_t hi) {
    const std::size_t firstPage = lo >> kPageShift;
    const std::size_t lastPage = (hi - 1) >> kPageShift;
    if (lastPage >= pages_.size()) pages_.resize(lastPage + 1);
    for (std::size_t pi = firstPage; pi <= lastPage; ++pi) {
      Page& p = pages_[pi];
      const std::size_t base = pi << kPageShift;
      const std::size_t from = lo > base ? lo - base : 0;
      const std::size_t to =
          hi - base < kPageRecords ? hi - base : kPageRecords;
      if (p.recs == nullptr) {
        if (!engaged_ || (from == 0 && to == kPageRecords) || !p.everWritten) {
          // Brand new, or the exposure covers the whole page: a fresh
          // zeroed buffer is the page's content; any disk copy is dead.
          p.recs = std::make_unique<T[]>(kPageRecords);
          ++residentCount_;
          p.everWritten = false;
          p.dirty = engaged_;
          p.referenced = true;
          continue;
        }
        // Partially re-exposed evicted page: the records below `from` are
        // live on disk, so fault the page in before zeroing the tail.
        faultIn(pi);
      }
      for (std::size_t r = from; r < to; ++r) p.recs[r] = T{};
      if (engaged_) p.dirty = true;
      p.referenced = true;
    }
    if (engaged_) {
      lastPage_ = lastPage;
      maybeEvict();
    }
  }

  void faultIn(std::size_t pi) {
    Page& p = pages_[pi];
    p.recs = std::make_unique<T[]>(kPageRecords);
    ++residentCount_;
    if (p.everWritten) {
      const Stopwatch sw;
      file_->readPage(pi, p.recs.get());
      stats_->pageReadUs.record(
          static_cast<std::uint64_t>(sw.elapsedSeconds() * 1e6));
      stats_->readBytes += kPageBytes;
      ++stats_->pageFaults;
    }
    p.dirty = false;
    p.referenced = true;
    lastPage_ = pi;
    maybeEvict();
  }

  void maybeEvict() {
    while (residentCount_ > budgetPages_) {
      const std::size_t victim = pickVictim();
      if (victim == kNoPage) return;  // everything protected; stay over
      evict(victim);
    }
  }

  /// CLOCK sweep: skip the pinned page 0, the most recently touched page,
  /// and evicted pages; clear one referenced bit per pass over a page.
  /// Two full sweeps always suffice (the first clears every bit).
  [[nodiscard]] std::size_t pickVictim() {
    const std::size_t n = pages_.size();
    for (std::size_t step = 0; step < 2 * n; ++step) {
      const std::size_t pi = clockHand_;
      clockHand_ = clockHand_ + 1 == n ? 0 : clockHand_ + 1;
      Page& p = pages_[pi];
      if (pi == 0 || pi == lastPage_ || p.recs == nullptr) continue;
      if (p.referenced) {
        p.referenced = false;
        continue;
      }
      return pi;
    }
    return kNoPage;
  }

  void evict(std::size_t pi) {
    Page& p = pages_[pi];
    if (p.dirty) {
      const Stopwatch sw;
      const bool firstWrite = !p.everWritten;
      file_->writePage(pi, p.recs.get());
      stats_->pageWriteUs.record(
          static_cast<std::uint64_t>(sw.elapsedSeconds() * 1e6));
      stats_->writeBytes += kPageBytes;
      if (firstWrite) stats_->spillBytes += kPageBytes;
      p.everWritten = true;
      p.dirty = false;
    }
    p.recs.reset();
    --residentCount_;
    ++stats_->evictions;
  }

  std::vector<Page> pages_;
  std::size_t size_ = 0;
  std::size_t residentCount_ = 0;

  // spill-tier state (meaningful once engaged)
  bool engaged_ = false;
  std::size_t budgetPages_ = 0;
  std::size_t clockHand_ = 0;
  std::size_t lastPage_ = 0;
  PageFile* file_ = nullptr;
  PagerStats* stats_ = nullptr;
};

}  // namespace icb::xmem
