#include "xmem/page_file.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace icb::xmem {

namespace {

/// Header magic; padded with NULs to 16 bytes in the header block.
constexpr char kMagic[] = "icbdd-xpage-v3";

/// Little-endian store of a u64 into a byte buffer (explicit endianness:
/// the header reads identically on any host).
void putU64le(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

std::string errnoText() {
  return std::strerror(errno);  // NOLINT: single-threaded failure path
}

}  // namespace

PageFile::~PageFile() { close(); }

void PageFile::open(const std::string& path, std::uint64_t pageBytes,
                    std::uint64_t recordBytes) {
  close();
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      throw IoError("spill directory cannot be created: " + ec.message(),
                    path, 0);
    }
  }
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    throw IoError("spill file cannot be created: " + errnoText(), path, 0);
  }
  path_ = path;
  pageBytes_ = pageBytes;
  highWaterBytes_ = kHeaderBytes;

  // 64-byte header: magic (16), endian tag (8), page bytes (8), record
  // bytes (8), reserved zeros (24).  The tag byte sequence 01..08 read back
  // as a host u64 reveals the writer's endianness.
  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic) - 1);
  putU64le(header + 16, 0x0807060504030201ull);
  putU64le(header + 24, pageBytes);
  putU64le(header + 32, recordBytes);
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fflush(file_) != 0) {
    const std::string why = "spill header write failed: " + errnoText();
    close();
    throw IoError(why, path, 0);
  }
}

void PageFile::writePage(std::uint64_t pageIndex, const void* data) {
  const std::uint64_t offset = kHeaderBytes + pageIndex * pageBytes_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw IoError("spill seek failed: " + errnoText(), path_, offset);
  }
  const std::size_t wrote = std::fwrite(data, 1, pageBytes_, file_);
  if (wrote != pageBytes_) {
    // A short write is how stdio surfaces ENOSPC; report the exact byte so
    // the operator can size the spill volume (docs/external_memory.md).
    throw IoError("spill short write (" + std::to_string(wrote) + " of " +
                      std::to_string(pageBytes_) + " bytes; disk full?): " +
                      errnoText(),
                  path_, offset + wrote);
  }
  if (std::fflush(file_) != 0) {
    throw IoError("spill flush failed: " + errnoText(), path_, offset);
  }
  if (offset + pageBytes_ > highWaterBytes_) {
    highWaterBytes_ = offset + pageBytes_;
  }
}

void PageFile::readPage(std::uint64_t pageIndex, void* data) {
  const std::uint64_t offset = kHeaderBytes + pageIndex * pageBytes_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw IoError("spill seek failed: " + errnoText(), path_, offset);
  }
  const std::size_t got = std::fread(data, 1, pageBytes_, file_);
  if (got != pageBytes_) {
    throw IoError("spill short read (" + std::to_string(got) + " of " +
                      std::to_string(pageBytes_) +
                      " bytes; file truncated?)",
                  path_, offset + got);
  }
}

void PageFile::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best effort; scratch file
  }
  path_.clear();
  pageBytes_ = 0;
  highWaterBytes_ = 0;
}

}  // namespace icb::xmem
