// Pager statistics of the external-memory tier (src/xmem/).
//
// PagerStats is the native stat struct of a PagedStore + PageFile pair,
// following the package's telemetry shape (docs/observability.md): plain
// counters and obs::Histogram members owned single-writer by the store,
// folded into the dotted-name catalog (bdd.xmem.*) by
// MetricsRegistry::captureBdd at snapshot time -- no atomics, no string
// keys on the fault path.
#pragma once

#include <cstdint>

#include "obs/histogram.hpp"

namespace icb::xmem {

struct PagerStats {
  /// Page-cache misses that faulted a previously evicted page back in.
  /// Fresh tail pages (arena growth) do not count: a fault means the tier
  /// actually re-read state it had spilled, which is what the CI spill
  /// gate asserts to prove engagement.
  std::uint64_t pageFaults = 0;
  /// Resident pages evicted to stay within the resident budget.
  std::uint64_t evictions = 0;
  /// Fresh bytes added to the spill file (first write of each page); the
  /// file's high-water growth, as opposed to re-writes of dirty pages.
  std::uint64_t spillBytes = 0;
  /// Total bytes read back from the spill file.
  std::uint64_t readBytes = 0;
  /// Total bytes written to the spill file (first writes + re-writes).
  std::uint64_t writeBytes = 0;

  /// Fault-in read latency per page, microseconds.
  obs::Histogram pageReadUs;
  /// Write-back latency per page, microseconds.
  obs::Histogram pageWriteUs;
};

}  // namespace icb::xmem
