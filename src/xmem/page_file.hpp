// PageFile: the on-disk half of the external-memory tier.
//
// A PageFile is a scratch file of fixed-size page slots: page p lives at
// byte offset kHeaderBytes + p * pageBytes, so write-back and fault-in are
// one positioned I/O each and no free-space management is ever needed (a
// page's slot is its index).  The file starts with a 64-byte header
// recording magic, version, endianness tag, and the page geometry -- the
// same explicit-endianness discipline as the icbdd-bdd-v3 dump format
// (docs/node_layout.md), so a stray spill file is self-describing.
//
// The file is process-private scratch: it is created on engage, unlinked in
// the destructor, and never read by another process, so page payloads are
// raw record bytes in host order (the header's endian tag records which).
// Failure modes -- ENOSPC, short writes, a vanished directory -- raise
// IoError with the offending path and byte offset; the spill tier
// propagates it to the engine caller as a hard job failure
// (docs/external_memory.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace icb::xmem {

/// A spill-file I/O failure (disk full, short write, unlinked directory).
/// Derives from std::runtime_error so engine callers that do not know about
/// the spill tier still fail the run cleanly instead of crashing.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, std::string path, std::uint64_t offset)
      : std::runtime_error(what + " (" + path + " @ byte " +
                           std::to_string(offset) + ")"),
        path_(std::move(path)),
        offset_(offset) {}

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t byteOffset() const { return offset_; }

 private:
  std::string path_;
  std::uint64_t offset_;
};

class PageFile {
 public:
  /// Fixed header size; page slot p starts at kHeaderBytes + p * pageBytes.
  static constexpr std::uint64_t kHeaderBytes = 64;

  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates the scratch file (directories included) and writes the header.
  /// `recordBytes` is informational header content (the payload is opaque
  /// bytes to this class).  Throws IoError on any failure.
  void open(const std::string& path, std::uint64_t pageBytes,
            std::uint64_t recordBytes);

  [[nodiscard]] bool isOpen() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t pageBytes() const { return pageBytes_; }

  /// Writes one full page into its slot.  Detects short writes (the ENOSPC
  /// signature with stdio) and throws IoError with the failing offset.
  void writePage(std::uint64_t pageIndex, const void* data);

  /// Reads one full page back from its slot.  A short read means the file
  /// was truncated under us -- IoError.
  void readPage(std::uint64_t pageIndex, void* data);

  /// Bytes the file occupies on disk (header + highest slot ever written).
  [[nodiscard]] std::uint64_t bytesOnDisk() const { return highWaterBytes_; }

  /// Closes and unlinks the scratch file (idempotent).
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t pageBytes_ = 0;
  std::uint64_t highWaterBytes_ = 0;
};

}  // namespace icb::xmem
