#include "ici/conjunct_list.hpp"

#include <algorithm>
#include <unordered_set>

#include "check/check.hpp"

namespace icb {

namespace {

/// kCheap guard: every member must be a live handle of the list's manager.
void validateMembers(const BddManager* mgr, const std::vector<Bdd>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].isNull() || items[i].manager() != mgr) {
      throw CheckFailure(ViolationKind::kInvalidEdge,
                         "conjunct " + std::to_string(i) +
                             " is null or from a different manager");
    }
  }
}

}  // namespace

ConjunctList& ConjunctList::normalize() {
  if (mgr_ == nullptr) return *this;
  ICBDD_CHECK(kCheap, validateMembers(mgr_, items_));
  std::vector<Bdd> kept;
  std::unordered_set<Edge> seen;
  for (Bdd& f : items_) {
    if (f.isZero()) {
      items_.clear();
      items_.push_back(mgr_->zero());
      return *this;
    }
    if (f.isOne()) continue;
    if (seen.insert(f.edge()).second) kept.push_back(std::move(f));
  }
  items_ = std::move(kept);
  return *this;
}

bool ConjunctList::isFalse() const {
  return std::any_of(items_.begin(), items_.end(),
                     [](const Bdd& f) { return f.isZero(); });
}

bool ConjunctList::isTrue() const {
  return std::all_of(items_.begin(), items_.end(),
                     [](const Bdd& f) { return f.isOne(); });
}

Bdd ConjunctList::evaluate() const {
  ICBDD_CHECK(kCheap, validateMembers(mgr_, items_));
  Bdd acc = mgr_->one();
  // Conjoin smallest-first: keeps intermediates as small as possible.
  std::vector<Bdd> sorted = items_;
  std::sort(sorted.begin(), sorted.end(), [](const Bdd& a, const Bdd& b) {
    return a.size() < b.size();
  });
  for (const Bdd& f : sorted) {
    acc &= f;
    if (acc.isZero()) break;
  }
  return acc;
}

std::uint64_t ConjunctList::sharedNodeCount() const {
  if (items_.empty()) return 0;
  return sharedSize(items_);
}

std::vector<std::uint64_t> ConjunctList::memberSizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(items_.size());
  for (const Bdd& f : items_) sizes.push_back(f.size());
  return sizes;
}

void ConjunctList::sortBySize() {
  std::sort(items_.begin(), items_.end(), [](const Bdd& a, const Bdd& b) {
    return a.size() < b.size();
  });
}

bool ConjunctList::structurallyEqual(const ConjunctList& other) const {
  return items_ == other.items_;
}

bool ConjunctList::structurallyEqualUnordered(const ConjunctList& other) const {
  if (items_.size() != other.items_.size()) return false;
  std::vector<Edge> a;
  std::vector<Edge> b;
  a.reserve(items_.size());
  b.reserve(items_.size());
  for (const Bdd& f : items_) a.push_back(f.edge());
  for (const Bdd& f : other.items_) b.push_back(f.edge());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool ConjunctList::evalAssignment(std::span<const char> values) const {
  return std::all_of(items_.begin(), items_.end(),
                     [&](const Bdd& f) { return f.eval(values); });
}

std::string ConjunctList::describe() const {
  std::string out = std::to_string(items_.size()) + " conjunct" +
                    (items_.size() == 1 ? "" : "s");
  if (!items_.empty()) {
    out += " (";
    bool first = true;
    for (const std::uint64_t s : memberSizes()) {
      if (!first) out += ", ";
      out += std::to_string(s);
      first = false;
    }
    out += ")";
  }
  return out;
}

}  // namespace icb
