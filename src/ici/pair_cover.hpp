// Exact minimum-cost *pairwise* cover (paper Theorem 2).
//
// The paper shows that if conjunction-evaluation is restricted to subsets of
// size <= 2, the optimal choice is a minimum-weight edge cover, computable in
// polynomial time via weighted matching -- and then immediately notes the
// result "is of limited practical value" because BDD sizes do not add under
// node sharing, so the greedy heuristic of Figure 1 is used instead.
//
// We implement the exact cover for ablation: on small lists (n <= 20) an
// exponential-in-n but trivially correct subset DP finds the true optimum of
// the additive cost model, letting bench/ablation_cover quantify how much
// the greedy policy loses (and how much the additive model itself misstates
// real shared sizes).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ici/conjunct_list.hpp"

namespace icb {

struct PairCoverResult {
  /// Chosen cover: each element is either {i, i} (keep X_i alone) or {i, j}
  /// (evaluate X_i & X_j).  Indices refer to the input list.
  std::vector<std::pair<std::size_t, std::size_t>> cover;
  /// Optimal cost under the additive model: sum of BDDSize over the cover.
  std::uint64_t additiveCost = 0;
  /// Actual shared node count of the resulting list.
  std::uint64_t actualSharedSize = 0;
};

/// Computes the optimal pairwise cover of `list` (additive cost model) and
/// returns it without modifying the list.  Throws BddUsageError when the
/// list has more than `maxN` members (the DP is O(2^n * n^2)).
PairCoverResult optimalPairCover(const ConjunctList& list,
                                 std::size_t maxN = 20);

/// Applies a cover to a list: members named once stay, pairs are conjoined.
ConjunctList applyPairCover(const ConjunctList& list,
                            const PairCoverResult& cover);

}  // namespace icb
