#include "ici/simplify.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/ici_checker.hpp"

namespace icb {

SimplifyResult simplifyList(ConjunctList& list, const SimplifyOptions& options) {
  SimplifyResult result;
  BddManager* mgr = list.manager();
  if (mgr == nullptr || list.size() < 2) {
    result.sizeBefore = result.sizeAfter = list.sharedNodeCount();
    return result;
  }

  // At kFull, snapshot the incoming list (handles only -- cheap) so the
  // Section III.A contract "the denoted conjunction is unchanged" can be
  // audited on the way out.
  ConjunctList snapshot;
  ICBDD_CHECK(kFull, snapshot = list);

  list.normalize();
  result.sizeBefore = list.sharedNodeCount();

  bool changed = true;
  while (changed && result.passes < options.maxPasses && !list.isFalse()) {
    changed = false;
    ++result.passes;

    // Cache sizes for the pass; refreshed whenever a member changes.
    std::vector<std::uint64_t> sizes = list.memberSizes();

    for (std::size_t i = 0; i < list.size(); ++i) {
      Bdd current = list[i];
      if (options.simultaneous) {
        // One multi-care-set Restrict against every other member at once.
        std::vector<Bdd> cares;
        cares.reserve(list.size() - 1);
        for (std::size_t j = 0; j < list.size(); ++j) {
          if (i == j) continue;
          if (options.smallerOnly && sizes[j] > sizes[i]) continue;
          cares.push_back(list[j]);
        }
        if (!cares.empty()) {
          const Bdd simplified = current.restrictByAll(cares);
          if (simplified != current) {
            const std::uint64_t newSize = simplified.size();
            if (!options.keepOnlyShrinking || newSize < sizes[i] ||
                simplified.isConstant()) {
              current = simplified;
              sizes[i] = newSize;
              ++result.applications;
              changed = true;
            }
          }
        }
      } else {
        for (std::size_t j = 0; j < list.size(); ++j) {
          if (i == j) continue;
          if (options.smallerOnly && sizes[j] > sizes[i]) continue;
          const Bdd simplified = current.restrictBy(list[j]);
          if (simplified == current) continue;
          const std::uint64_t newSize = simplified.size();
          if (options.keepOnlyShrinking && newSize >= sizes[i] &&
              !simplified.isConstant()) {
            continue;
          }
          current = simplified;
          sizes[i] = newSize;
          ++result.applications;
          changed = true;
          if (current.isConstant()) break;
        }
      }
      if (current != list[i]) {
        list.replace(i, current);
      }
      if (current.isZero()) break;
    }

    list.normalize();
    if (list.size() < 2) break;
  }

  result.sizeAfter = list.sharedNodeCount();
  ICBDD_CHECK(kFull, IciChecker(*mgr)
                         .checkDenotationPreserved(snapshot, list)
                         .throwIfBroken());
  return result;
}

}  // namespace icb
