// Exact termination test for implicitly conjoined lists (Section III.B).
//
// Deciding G_i == G_{i+1} without building either conjunction decomposes as:
//   X == Y   iff   X => Y and Y => X            (check both implications)
//   X => Y   iff   X => Y_k for every k          (check each member)
//   X => Y_k iff   !X_1 | ... | !X_n | Y_k is a tautology.
//
// The tautology test on an implicit disjunction runs these steps in order:
//   1. constant TRUE in the list => tautology; drop constant FALSEs;
//   2. two complementary members => tautology (constant time thanks to
//      complement edges); drop duplicates;
//   3. a pairwise disjunction equal to TRUE => tautology -- obtained for
//      free via Theorem 3 by Restrict-simplifying each member by the
//      negations of the others and re-running step 1;
//   4. otherwise Shannon-expand on a chosen variable (the paper picks the
//      top variable of the first BDD) and recurse on both cofactor lists.
//
// Worst case exponential, "frequently not too time-consuming in practice".
#pragma once

#include <cstdint>
#include <vector>

#include "ici/conjunct_list.hpp"

namespace icb {

/// Which variable step 4 cofactors on.  The paper uses kTopOfFirst and notes
/// in Section V that better choices were not investigated; the alternatives
/// exist for bench/ablation_cofactor.
enum class CofactorChoice {
  kTopOfFirst,   ///< top variable of the first BDD in the list (the paper)
  kHighestLevel, ///< the globally topmost variable of any member
  kMostCommon,   ///< top variable shared by the most members
};

struct TerminationOptions {
  CofactorChoice cofactorChoice = CofactorChoice::kTopOfFirst;
  /// Use the Theorem 3 Restrict shortcut for step 3.  When off, step 3 is
  /// the literal pairwise OR == TRUE scan.
  bool restrictShortcut = true;
  /// Exploit monotonicity (G_{i+1} => G_i holds by construction), checking
  /// only the other implication.  The paper notes "the current
  /// implementation does not exploit this optimization", so this defaults
  /// off; the engines can turn it on as an extension.
  bool assumeMonotonic = false;
};

struct TerminationStats {
  std::uint64_t tautologyCalls = 0;      ///< recursive step-1..4 invocations
  std::uint64_t shannonExpansions = 0;   ///< step-4 activations
  std::uint64_t step1Hits = 0;           ///< constant-TRUE-member conclusions
  std::uint64_t step2Hits = 0;           ///< complement-pair conclusions
  std::uint64_t step3Hits = 0;           ///< pairwise/Restrict conclusions
  std::uint64_t implicationChecks = 0;   ///< X => Y_k sub-problems
  std::uint64_t maxDepth = 0;            ///< deepest Shannon recursion
};

/// Stateless (except statistics) checker over one manager.
class TerminationChecker {
 public:
  explicit TerminationChecker(BddManager& mgr,
                              const TerminationOptions& options = {})
      : mgr_(mgr), options_(options) {}

  /// Is the disjunction of the given functions a tautology?
  [[nodiscard]] bool disjunctionIsTautology(std::vector<Edge> disjuncts);

  /// Does the conjunction of X imply the single function y?
  [[nodiscard]] bool implies(const ConjunctList& x, const Bdd& y);

  /// Does the conjunction of X imply the conjunction of Y?
  [[nodiscard]] bool implies(const ConjunctList& x, const ConjunctList& y);

  /// Exact semantic equality of two implicitly conjoined lists.
  /// With options_.assumeMonotonic, `candidateSubset` is taken to already
  /// imply `candidateSuperset` and only the reverse implication is checked.
  [[nodiscard]] bool equal(const ConjunctList& candidateSubset,
                           const ConjunctList& candidateSuperset);

  [[nodiscard]] const TerminationStats& stats() const { return stats_; }
  void resetStats() { stats_ = TerminationStats{}; }

 private:
  [[nodiscard]] bool tautRec(std::vector<Edge> disjuncts, std::uint64_t depth);
  [[nodiscard]] unsigned chooseVar(const std::vector<Edge>& disjuncts) const;

  BddManager& mgr_;
  TerminationOptions options_;
  TerminationStats stats_;
};

}  // namespace icb
