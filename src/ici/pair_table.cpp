#include "ici/pair_table.hpp"

#include <algorithm>
#include <limits>

namespace icb {

PairTable::PairTable(BddManager& mgr, std::vector<Bdd> conjuncts,
                     const PairTableOptions& options)
    : mgr_(mgr), conjuncts_(std::move(conjuncts)), options_(options) {
  sizes_.reserve(conjuncts_.size());
  for (const Bdd& f : conjuncts_) sizes_.push_back(f.size());
  const std::size_t n = conjuncts_.size();
  table_.assign(n, std::vector<Entry>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      table_[i][j] = buildEntry(i, j);
      ++built_;
      if (table_[i][j].aborted) ++aborted_;
    }
  }
}

PairTable::Entry PairTable::buildEntry(std::size_t i, std::size_t j) const {
  Entry entry;
  const Edge fi = conjuncts_[i].edge();
  const Edge fj = conjuncts_[j].edge();

  Edge merged = kFalseEdge;
  bool ok = true;
  mgr_.autoGc();
  if (options_.buildCapFactor > 0.0) {
    const auto budget = std::max<std::uint64_t>(
        options_.buildCapFloor,
        static_cast<std::uint64_t>(options_.buildCapFactor *
                                   static_cast<double>(sizes_[i] + sizes_[j])));
    ok = mgr_.andBoundedE(fi, fj, budget, &merged);
  } else {
    merged = mgr_.andE(fi, fj);
  }

  if (!ok) {
    entry.aborted = true;
    entry.ratio = std::numeric_limits<double>::infinity();
    return entry;
  }

  entry.conjunction = Bdd(&mgr_, merged);
  entry.size = entry.conjunction.size();
  // Figure 1: r = BDDSize(P_ij) / BDDSize(X_i, X_j), with the denominator
  // taking node sharing between the two conjuncts into account.
  const Edge roots[2] = {fi, fj};
  const std::uint64_t denom = std::max<std::uint64_t>(1, mgr_.sharedSizeE(roots));
  entry.ratio = static_cast<double>(entry.size) / static_cast<double>(denom);
  return entry;
}

std::optional<PairTable::BestPair> PairTable::best() const {
  std::optional<BestPair> result;
  const std::size_t n = conjuncts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Entry& e = table_[i][j];
      if (e.aborted) continue;
      if (!result || e.ratio < result->ratio) {
        result = BestPair{i, j, e.ratio};
      }
    }
  }
  return result;
}

void PairTable::merge(std::size_t i, std::size_t j) {
  if (i > j) std::swap(i, j);
  Entry& chosen = table_[i][j];
  if (chosen.aborted || chosen.conjunction.isNull()) {
    throw BddUsageError("PairTable::merge on an aborted entry");
  }
  conjuncts_[i] = chosen.conjunction;
  sizes_[i] = chosen.size;

  conjuncts_.erase(conjuncts_.begin() + static_cast<std::ptrdiff_t>(j));
  sizes_.erase(sizes_.begin() + static_cast<std::ptrdiff_t>(j));
  table_.erase(table_.begin() + static_cast<std::ptrdiff_t>(j));
  for (auto& row : table_) {
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(j));
  }

  // Every surviving entry not touching the merged slot is kept as-is.
  // Count each such entry once over its lifetime: `entries_reused` is the
  // number of rebuilds the incremental update avoided, and an entry that
  // survives three merges still only ever avoided one build.
  const std::size_t n = conjuncts_.size();
  for (std::size_t a = 0; a < n; ++a) {
    if (a == i) continue;
    for (std::size_t b = a + 1; b < n; ++b) {
      if (b == i) continue;
      Entry& kept = table_[a][b];
      if (!kept.reuseCounted) {
        kept.reuseCounted = true;
        ++reused_;
      }
    }
  }

  rebuildRow(i);
}

void PairTable::rebuildRow(std::size_t i) {
  const std::size_t n = conjuncts_.size();
  for (std::size_t k = 0; k < n; ++k) {
    if (k == i) continue;
    const std::size_t a = std::min(i, k);
    const std::size_t b = std::max(i, k);
    table_[a][b] = buildEntry(a, b);
    ++built_;
    if (table_[a][b].aborted) ++aborted_;
  }
}

}  // namespace icb
