#include "ici/termination.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace icb {

namespace {

enum class ScanVerdict { kOpen, kStep1Tautology, kStep2Tautology };

/// Step 1 + step 2 bookkeeping: drops FALSEs and duplicates in place.
/// Reports which rule (if any) already proves the disjunction a tautology
/// (a TRUE member is step 1, a complementary pair step 2).
ScanVerdict constantAndComplementScan(std::vector<Edge>& d) {
  std::unordered_set<Edge> seen;
  std::vector<Edge> kept;
  kept.reserve(d.size());
  for (const Edge e : d) {
    if (e == kTrueEdge) return ScanVerdict::kStep1Tautology;
    if (e == kFalseEdge) continue;  // step 1: drop
    if (seen.count(edgeNot(e)) != 0) return ScanVerdict::kStep2Tautology;
    if (seen.insert(e).second) kept.push_back(e);  // step 2: duplicates
  }
  d = std::move(kept);
  return ScanVerdict::kOpen;
}

}  // namespace

bool TerminationChecker::disjunctionIsTautology(std::vector<Edge> disjuncts) {
  return tautRec(std::move(disjuncts), 0);
}

bool TerminationChecker::tautRec(std::vector<Edge> d, std::uint64_t depth) {
  ++stats_.tautologyCalls;
  stats_.maxDepth = std::max(stats_.maxDepth, depth);

  switch (constantAndComplementScan(d)) {
    case ScanVerdict::kStep1Tautology:
      ++stats_.step1Hits;
      return true;
    case ScanVerdict::kStep2Tautology:
      ++stats_.step2Hits;
      return true;
    case ScanVerdict::kOpen:
      break;
  }
  if (d.empty()) return false;            // empty disjunction is FALSE
  if (d.size() == 1) return false;        // single non-TRUE member

  // ---- step 3 ----
  if (options_.restrictShortcut) {
    // Theorem 3: a | b is a tautology iff Restrict(a, !b) is.  Simplifying
    // each member by the negations of all the others and re-running step 1
    // subsumes the pairwise scan, and shrinks the members as a bonus.
    bool changed = false;
    for (std::size_t i = 0; i < d.size(); ++i) {
      for (std::size_t j = 0; j < d.size(); ++j) {
        if (i == j || d[i] == kFalseEdge) continue;
        const Edge simplified = mgr_.restrictE(d[i], edgeNot(d[j]));
        if (simplified == kTrueEdge) {
          ++stats_.step3Hits;
          return true;
        }
        if (simplified != d[i]) {
          // Keep only results that do not grow (Restrict may enlarge).
          if (simplified == kFalseEdge ||
              mgr_.sizeE(simplified) <= mgr_.sizeE(d[i])) {
            d[i] = simplified;
            changed = true;
          }
        }
      }
    }
    // Any conclusion the re-scan reaches was exposed by the Restrict pass,
    // so it is attributed to step 3 regardless of the closing rule.
    if (changed && constantAndComplementScan(d) != ScanVerdict::kOpen) {
      ++stats_.step3Hits;
      return true;
    }
    if (d.empty()) return false;
    if (d.size() == 1) return d[0] == kTrueEdge;
  } else {
    // Literal step 3: pairwise disjunction equal to TRUE.
    for (std::size_t i = 0; i < d.size(); ++i) {
      for (std::size_t j = i + 1; j < d.size(); ++j) {
        if (mgr_.orE(d[i], d[j]) == kTrueEdge) {
          ++stats_.step3Hits;
          return true;
        }
      }
    }
  }

  // ---- step 4: Shannon expansion ----
  // Note: the chosen variable need not be at the TOP of every member (with
  // the paper's "top of the first BDD" policy it usually is not), so each
  // member needs a genuine cofactor, not just an arc dereference.
  ++stats_.shannonExpansions;
  const unsigned var = chooseVar(d);
  std::vector<Edge> hi;
  std::vector<Edge> lo;
  hi.reserve(d.size());
  lo.reserve(d.size());
  const unsigned level = mgr_.varLevel(var);
  for (const Edge e : d) {
    if (!edgeIsConstant(e) && mgr_.edgeLevel(e) == level) {
      hi.push_back(mgr_.edgeThen(e));
      lo.push_back(mgr_.edgeElse(e));
    } else if (edgeIsConstant(e) || mgr_.edgeLevel(e) > level) {
      hi.push_back(e);  // e cannot depend on a variable above its top
      lo.push_back(e);
    } else {
      hi.push_back(mgr_.cofactorE(e, var, true));
      lo.push_back(mgr_.cofactorE(e, var, false));
    }
  }
  return tautRec(std::move(hi), depth + 1) && tautRec(std::move(lo), depth + 1);
}

unsigned TerminationChecker::chooseVar(const std::vector<Edge>& d) const {
  switch (options_.cofactorChoice) {
    case CofactorChoice::kTopOfFirst: {
      // "we are currently selecting the top BDD variable of the first BDD
      //  in the list as the variable to cofactor on"
      for (const Edge e : d) {
        if (!edgeIsConstant(e)) return mgr_.nodeVar(e);
      }
      break;
    }
    case CofactorChoice::kHighestLevel: {
      unsigned bestLevel = BddManager::kTermLevel;
      unsigned bestVar = 0;
      for (const Edge e : d) {
        if (edgeIsConstant(e)) continue;
        const unsigned l = mgr_.edgeLevel(e);
        if (l < bestLevel) {
          bestLevel = l;
          bestVar = mgr_.nodeVar(e);
        }
      }
      if (bestLevel != BddManager::kTermLevel) return bestVar;
      break;
    }
    case CofactorChoice::kMostCommon: {
      std::unordered_map<unsigned, unsigned> counts;
      unsigned bestVar = 0;
      unsigned bestCount = 0;
      for (const Edge e : d) {
        if (edgeIsConstant(e)) continue;
        const unsigned v = mgr_.nodeVar(e);
        const unsigned c = ++counts[v];
        // Tie-break toward the topmost level for progress guarantees.
        if (c > bestCount ||
            (c == bestCount && mgr_.varLevel(v) < mgr_.varLevel(bestVar))) {
          bestVar = v;
          bestCount = c;
        }
      }
      if (bestCount > 0) return bestVar;
      break;
    }
  }
  throw BddUsageError("chooseVar on an all-constant disjunction");
}

bool TerminationChecker::implies(const ConjunctList& x, const Bdd& y) {
  ++stats_.implicationChecks;
  if (y.isOne()) return true;
  std::vector<Edge> disjuncts;
  disjuncts.reserve(x.size() + 1);
  for (const Bdd& xi : x) disjuncts.push_back(edgeNot(xi.edge()));
  disjuncts.push_back(y.edge());
  return disjunctionIsTautology(std::move(disjuncts));
}

bool TerminationChecker::implies(const ConjunctList& x, const ConjunctList& y) {
  return std::all_of(y.begin(), y.end(),
                     [&](const Bdd& yk) { return implies(x, yk); });
}

bool TerminationChecker::equal(const ConjunctList& candidateSubset,
                               const ConjunctList& candidateSuperset) {
  // Cheap structural screen first: identical lists are trivially equal.
  if (candidateSubset.structurallyEqualUnordered(candidateSuperset)) {
    return true;
  }
  if (!implies(candidateSuperset, candidateSubset)) return false;
  if (options_.assumeMonotonic) return true;
  return implies(candidateSubset, candidateSuperset);
}

}  // namespace icb
