// The paper's Figure 1 greedy conjunction-evaluation algorithm, plus the
// enclosing evaluation-and-simplification policy of Section III.A.
//
//   Conjunction Evaluation:
//     Let GrowThreshold = 1.5.
//     Build a table P of all pairwise conjunctions: P_ij := X_i & X_j.
//     Loop
//       Find the i, j (i != j) minimizing r = BDDSize(P_ij)/BDDSize(X_i, X_j)
//       If r_min > GrowThreshold, exit.
//       Replace X_i and X_j with P_ij; update P.
//     EndLoop
//
// "a smaller threshold holds BDD size down, but can get caught in a local
//  minimum, whereas any threshold greater than 1 could theoretically allow
//  us to build exponentially-sized BDDs" -- the GrowThreshold is therefore a
// first-class option here, swept by bench/ablation_growthreshold.
#pragma once

#include <cstdint>
#include <vector>

#include "ici/conjunct_list.hpp"
#include "ici/pair_table.hpp"
#include "ici/simplify.hpp"

namespace icb {

struct EvaluatePolicyOptions {
  double growThreshold = 1.5;  ///< Figure 1's GrowThreshold
  SimplifyOptions simplify;    ///< cross-simplification pass configuration
  PairTableOptions pairTable;  ///< bounded pairwise-conjunction builds
  bool simplifyFirst = true;   ///< run the Restrict pass before the greedy loop
  /// Hard cap on greedy merges per invocation (0 = unlimited).  A safety
  /// valve, not part of the paper's algorithm.
  unsigned maxMerges = 0;
};

struct EvaluatePolicyResult {
  std::uint64_t sizeBefore = 0;  ///< shared node count before
  std::uint64_t sizeAfter = 0;
  unsigned merges = 0;           ///< pairs evaluated explicitly
  unsigned rejections = 0;       ///< loop exits because r_min > GrowThreshold
  unsigned simplifyApplications = 0;
  std::uint64_t abortedPairBuilds = 0;
  std::uint64_t pairEntriesBuilt = 0;   ///< P_ij conjunctions computed
  std::uint64_t pairEntriesReused = 0;  ///< P_ij entries kept across merges
  /// The winning Figure 1 ratio of each accepted merge, in merge order.
  std::vector<double> acceptedRatios;
  /// The r_min that ended the loop (0 when it ended for another reason).
  double rejectedRatio = 0.0;

  /// Folds a later policy application into this one: counters add, the
  /// accepted-ratio list appends, sizeAfter and rejectedRatio follow the
  /// later application, and sizeBefore keeps the earliest nonzero snapshot.
  /// Every place that layers one result over another goes through this
  /// helper, so a new field added here is merged (or deliberately not) in
  /// exactly one spot instead of being silently dropped by field-by-field
  /// copies at each call site.
  void merge(const EvaluatePolicyResult& other);
};

/// Applies the Section III.A policy to `list` in place: cross-simplify with
/// Restrict, then greedily evaluate profitable pairwise conjunctions.
/// The denoted conjunction is unchanged.
EvaluatePolicyResult evaluateAndSimplify(ConjunctList& list,
                                         const EvaluatePolicyOptions& options = {});

/// Runs only the Figure 1 greedy loop (no Restrict pass); exposed separately
/// for tests and the ablation benchmarks.
EvaluatePolicyResult greedyEvaluate(ConjunctList& list,
                                    const EvaluatePolicyOptions& options = {});

}  // namespace icb
