#include "ici/pair_cover.hpp"

#include <limits>

namespace icb {

PairCoverResult optimalPairCover(const ConjunctList& list, std::size_t maxN) {
  const std::size_t n = list.size();
  if (n > maxN) {
    throw BddUsageError("optimalPairCover: list too long for the subset DP");
  }
  PairCoverResult result;
  if (n == 0) return result;
  BddManager& mgr = *list.manager();

  // Pre-compute the additive costs: singletons and pairwise conjunctions.
  std::vector<std::uint64_t> single(n);
  std::vector<std::vector<std::uint64_t>> pairCost(
      n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::vector<Bdd>> pairBdd(n, std::vector<Bdd>(n));
  for (std::size_t i = 0; i < n; ++i) single[i] = list[i].size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairBdd[i][j] = list[i] & list[j];
      pairCost[i][j] = pairBdd[i][j].size();
    }
  }

  // dp[mask] = min additive cost to cover exactly the members in mask,
  // choice[mask] records the subset (i or i,j) used on the lowest element.
  const std::size_t full = (std::size_t{1} << n) - 1;
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dp(full + 1, kInf);
  std::vector<std::pair<std::size_t, std::size_t>> choice(full + 1, {0, 0});
  dp[0] = 0;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (dp[mask] == kInf) continue;
    // Cover the lowest uncovered member first (canonical DP order).
    std::size_t i = 0;
    while ((mask >> i) & 1u) ++i;
    const std::size_t withI = mask | (std::size_t{1} << i);
    if (dp[mask] + single[i] < dp[withI]) {
      dp[withI] = dp[mask] + single[i];
      choice[withI] = {i, i};
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if ((mask >> j) & 1u) continue;
      const std::size_t withIJ = withI | (std::size_t{1} << j);
      if (dp[mask] + pairCost[i][j] < dp[withIJ]) {
        dp[withIJ] = dp[mask] + pairCost[i][j];
        choice[withIJ] = {i, j};
      }
    }
  }

  result.additiveCost = dp[full];
  std::size_t mask = full;
  while (mask != 0) {
    const auto [i, j] = choice[mask];
    result.cover.emplace_back(i, j);
    mask &= ~(std::size_t{1} << i);
    if (j != i) mask &= ~(std::size_t{1} << j);
  }

  // Measure what the cover really costs with node sharing.
  ConjunctList applied = applyPairCover(list, result);
  result.actualSharedSize = applied.sharedNodeCount();
  (void)mgr;
  return result;
}

ConjunctList applyPairCover(const ConjunctList& list,
                            const PairCoverResult& cover) {
  ConjunctList out(list.manager());
  for (const auto& [i, j] : cover.cover) {
    if (i == j) {
      out.push(list[i]);
    } else {
      out.push(list[i] & list[j]);
    }
  }
  out.normalize();
  return out;
}

}  // namespace icb
