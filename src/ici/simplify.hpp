// Cross-simplification of an implicitly conjoined list (paper Section III.A).
//
// "...we first simplify each BDD X_i by every other BDD X_j that's smaller
//  than it.  (Simplifying a small BDD by a large BDD, in our experience,
//  does little good.)"
//
// Each conjunct is a care set for every other conjunct: where X_j is false
// the conjunction is false regardless of X_i, so X_i may be replaced by
// Restrict(X_i, X_j) without changing the denoted set.  A side effect
// (Theorem 3) is that if any two members have a tautological disjunction of
// complements, simplification exposes it as a constant.
#pragma once

#include <cstdint>

#include "ici/conjunct_list.hpp"

namespace icb {

struct SimplifyOptions {
  /// Upper bound on full passes over the list (each pass simplifies every
  /// member by every smaller member).  Passes repeat while sizes shrink.
  unsigned maxPasses = 4;
  /// Only simplify X_i by X_j when size(X_j) <= size(X_i) (the paper's
  /// policy).  Disabled for ablation experiments.
  bool smallerOnly = true;
  /// Reject a Restrict result that came out *larger* than the original
  /// member (Restrict does not always shrink).
  bool keepOnlyShrinking = true;
  /// Simplify each member against ALL other members at once with the
  /// simultaneous multi-care-set Restrict (the paper's SS V future-work
  /// routine) instead of the pairwise loop.  Sharper when two care sets
  /// only pay off together; costs one multi-restrict per member per pass.
  bool simultaneous = false;
};

struct SimplifyResult {
  std::uint64_t sizeBefore = 0;  ///< shared node count before
  std::uint64_t sizeAfter = 0;   ///< shared node count after
  unsigned passes = 0;
  unsigned applications = 0;     ///< Restrict calls that were kept

  /// Net shrinkage (saturating: keepOnlyShrinking can still leave growth
  /// when disabled, and a grown list saved nothing).
  [[nodiscard]] std::uint64_t nodesSaved() const {
    return sizeBefore > sizeAfter ? sizeBefore - sizeAfter : 0;
  }
};

/// Simplifies `list` in place; the denoted conjunction is unchanged.
/// Members that become constant TRUE are dropped; a constant FALSE
/// collapses the list.
SimplifyResult simplifyList(ConjunctList& list,
                            const SimplifyOptions& options = {});

}  // namespace icb
