// Table of all pairwise conjunctions P_ij = X_i & X_j over a conjunct list
// (Figure 1: "Build a table P of all pairwise conjunctions").
//
// The table supports the incremental update Figure 1 needs: when the pair
// (i, j) is merged, every P entry involving i or j is discarded and entries
// pairing the merged BDD with the survivors are built.
//
// Building a pairwise conjunction can itself blow up.  The paper flags this
// in Section V ("we already have a limit on how large it can be and still be
// useful ... abort any of these operations if the size exceeds a specified
// bound"); we implement that wish with the node-budget-bounded AND.  An
// aborted entry is treated as infinitely bad, which is exactly the greedy
// policy's view of it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ici/conjunct_list.hpp"

namespace icb {

struct PairTableOptions {
  /// Node budget for building one P_ij, as a multiple of
  /// size(X_i) + size(X_j).  0 disables bounding (paper's literal Figure 1).
  double buildCapFactor = 8.0;
  /// Budget floor so tiny conjuncts still get a fair build allowance.
  std::uint64_t buildCapFloor = 2048;
};

class PairTable {
 public:
  PairTable(BddManager& mgr, std::vector<Bdd> conjuncts,
            const PairTableOptions& options = {});

  [[nodiscard]] std::size_t count() const { return conjuncts_.size(); }
  [[nodiscard]] const std::vector<Bdd>& conjuncts() const { return conjuncts_; }

  struct BestPair {
    std::size_t i = 0;
    std::size_t j = 0;
    double ratio = 0.0;  ///< BDDSize(P_ij) / BDDSize(X_i, X_j)
  };

  /// Finds the (i, j) minimizing the Figure 1 ratio.  Returns nullopt when
  /// fewer than two conjuncts remain or every pair build was aborted.
  [[nodiscard]] std::optional<BestPair> best() const;

  /// Replaces X_i and X_j by P_ij and updates the table.
  void merge(std::size_t i, std::size_t j);

  [[nodiscard]] std::uint64_t abortedBuilds() const { return aborted_; }
  /// P_ij conjunctions actually computed (construction + row rebuilds).
  [[nodiscard]] std::uint64_t entriesBuilt() const { return built_; }
  /// Entries carried across a merge unchanged -- the incremental-update
  /// payoff over rebuilding the whole table each round.
  [[nodiscard]] std::uint64_t entriesReused() const { return reused_; }

 private:
  // The ICI invariant checker verifies entries against freshly computed
  // conjunctions; the surgeon is the test-only corruption hook.
  friend class IciChecker;
  friend class PairTableSurgeon;

  struct Entry {
    Bdd conjunction;          // null when the bounded build gave up
    std::uint64_t size = 0;   // cached BDDSize(P_ij)
    double ratio = 0.0;
    bool aborted = false;
    // Set once the entry has been counted in reused_: an entry that
    // survives several merges is one avoided rebuild, not one per merge.
    bool reuseCounted = false;
  };

  [[nodiscard]] Entry buildEntry(std::size_t i, std::size_t j) const;
  void rebuildRow(std::size_t i);

  BddManager& mgr_;
  std::vector<Bdd> conjuncts_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::vector<Entry>> table_;  // table_[i][j] valid for j > i
  PairTableOptions options_;
  std::uint64_t aborted_ = 0;
  std::uint64_t built_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace icb
