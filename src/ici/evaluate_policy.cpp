#include "ici/evaluate_policy.hpp"

#include "check/check.hpp"
#include "check/ici_checker.hpp"

namespace icb {

void EvaluatePolicyResult::merge(const EvaluatePolicyResult& other) {
  if (sizeBefore == 0) sizeBefore = other.sizeBefore;
  sizeAfter = other.sizeAfter;
  merges += other.merges;
  rejections += other.rejections;
  simplifyApplications += other.simplifyApplications;
  abortedPairBuilds += other.abortedPairBuilds;
  pairEntriesBuilt += other.pairEntriesBuilt;
  pairEntriesReused += other.pairEntriesReused;
  acceptedRatios.insert(acceptedRatios.end(), other.acceptedRatios.begin(),
                        other.acceptedRatios.end());
  if (other.rejectedRatio > 0.0) rejectedRatio = other.rejectedRatio;
}

EvaluatePolicyResult greedyEvaluate(ConjunctList& list,
                                    const EvaluatePolicyOptions& options) {
  EvaluatePolicyResult result;
  result.sizeBefore = list.sharedNodeCount();
  BddManager* mgr = list.manager();
  if (mgr == nullptr || list.size() < 2) {
    result.sizeAfter = result.sizeBefore;
    return result;
  }

  // Figure 1 merges only ever *replace members by their conjunction*, so the
  // denoted set must come out unchanged; audited at kFull.
  ConjunctList snapshot;
  ICBDD_CHECK(kFull, snapshot = list);

  PairTable table(*mgr, list.items(), options.pairTable);
  while (table.count() >= 2) {
    const auto best = table.best();
    if (!best) break;
    if (best->ratio > options.growThreshold) {
      ++result.rejections;
      result.rejectedRatio = best->ratio;
      break;
    }
    table.merge(best->i, best->j);
    ++result.merges;
    result.acceptedRatios.push_back(best->ratio);
    if (options.maxMerges != 0 && result.merges >= options.maxMerges) break;
  }
  result.abortedPairBuilds = table.abortedBuilds();
  result.pairEntriesBuilt = table.entriesBuilt();
  result.pairEntriesReused = table.entriesReused();
  ICBDD_CHECK(kFull, IciChecker(*mgr).checkPairTable(table).throwIfBroken());

  list = ConjunctList(mgr, table.conjuncts());
  list.normalize();
  result.sizeAfter = list.sharedNodeCount();
  ICBDD_CHECK(kFull, IciChecker(*mgr)
                         .checkDenotationPreserved(snapshot, list)
                         .throwIfBroken());
  return result;
}

EvaluatePolicyResult evaluateAndSimplify(ConjunctList& list,
                                         const EvaluatePolicyOptions& options) {
  EvaluatePolicyResult result;
  result.sizeBefore = list.sharedNodeCount();

  list.normalize();
  if (options.simplifyFirst) {
    const SimplifyResult s = simplifyList(list, options.simplify);
    result.simplifyApplications = s.applications;
  }
  if (list.isFalse() || list.size() < 2) {
    result.sizeAfter = list.sharedNodeCount();
    return result;
  }

  result.merge(greedyEvaluate(list, options));
  return result;
}

}  // namespace icb
