// ConjunctList: an implicitly conjoined list of BDDs.
//
// The list X_1, ..., X_n denotes the conjunction X_1 & ... & X_n without
// ever building that (possibly exponentially larger) BDD.  This is the data
// structure at the heart of the paper: backward traversal keeps each
// iterate G_i in this form, BackImage distributes over the members
// (Theorem 1), and the policies in evaluate_policy / simplify / termination
// manipulate the representation while preserving the denoted set.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace icb {

class ConjunctList {
 public:
  ConjunctList() = default;
  explicit ConjunctList(BddManager* mgr) : mgr_(mgr) {}
  ConjunctList(BddManager* mgr, std::vector<Bdd> items)
      : mgr_(mgr), items_(std::move(items)) {}

  [[nodiscard]] BddManager* manager() const { return mgr_; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] const Bdd& operator[](std::size_t i) const { return items_[i]; }
  [[nodiscard]] const std::vector<Bdd>& items() const { return items_; }

  [[nodiscard]] auto begin() const { return items_.begin(); }
  [[nodiscard]] auto end() const { return items_.end(); }

  void push(Bdd f) { items_.push_back(std::move(f)); }
  void replace(std::size_t i, Bdd f) { items_[i] = std::move(f); }
  void erase(std::size_t i) {
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  void clear() { items_.clear(); }

  /// Drops constant-TRUE members and duplicates; if any member is FALSE the
  /// list collapses to the single FALSE conjunct.  Returns *this.
  ConjunctList& normalize();

  /// True iff some member is the constant FALSE (denoted set empty by
  /// normalization).
  [[nodiscard]] bool isFalse() const;

  /// True iff the list is empty or all members are TRUE.
  [[nodiscard]] bool isTrue() const;

  /// Explicitly evaluates the whole conjunction into one BDD.  This is
  /// exactly the operation the technique exists to avoid; engines use it for
  /// the monolithic baselines and tests use it as the oracle.
  [[nodiscard]] Bdd evaluate() const;

  /// Total size counting shared nodes once (the paper's parenthesized
  /// "BDD Nodes" column entries sum member sizes; this is the shared count).
  [[nodiscard]] std::uint64_t sharedNodeCount() const;

  /// Sizes of the individual members, as in the paper's "(1501, 629, ...)".
  [[nodiscard]] std::vector<std::uint64_t> memberSizes() const;

  /// Sorts members by ascending BDD size (simplification policy order).
  void sortBySize();

  /// Structural equality: same members in the same order (constant time per
  /// member thanks to canonicity).  NOT semantic equality -- that is the
  /// exact termination test's job.
  [[nodiscard]] bool structurallyEqual(const ConjunctList& other) const;

  /// Structural equality ignoring order (multiset compare of edges).  This
  /// is the "fast but possibly wrong" convergence check of the original ICI.
  [[nodiscard]] bool structurallyEqualUnordered(const ConjunctList& other) const;

  /// True iff the given full assignment satisfies every member.
  [[nodiscard]] bool evalAssignment(std::span<const char> values) const;

  /// Short human-readable description like "4 conjuncts (45, 441, 1345, 6657)".
  [[nodiscard]] std::string describe() const;

 private:
  BddManager* mgr_ = nullptr;
  std::vector<Bdd> items_;
};

}  // namespace icb
